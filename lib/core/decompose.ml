module Point = Mbr_geom.Point
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Legalizer = Mbr_place.Legalizer
module Library = Mbr_liberty.Library
module Cell_lib = Mbr_liberty.Cell

type report = { n_split : int; new_ids : Types.cell_id list }

(* Registry counters: how many registers each decompose entry point was
   asked to consider, and how many actually split. The recovery loop's
   convergence shows up as [decompose.splits] growing round over round
   while the victim set shrinks. *)
let m_requested = Mbr_obs.Metrics.counter "decompose.requested"

let m_splits = Mbr_obs.Metrics.counter "decompose.splits"

let split_counter = ref 0

let pin_net dsg cid kind =
  match Design.pin_of dsg cid kind with
  | Some pid -> (Design.pin dsg pid).Types.p_net
  | None -> None

(* Core eligibility: live, untouchable flags clear, splittable in two,
   an exact half-width cell with the same scan style exists, and no
   ordered-scan section (whose order a split could break).
   [~max_width_only] additionally requires the register to sit at its
   class's maximum width — the original §5 policy; the recovery loop
   splits any violating MBR regardless of width. *)
let eligible_gen ~max_width_only dsg lib cid =
  let a = Design.reg_attrs dsg cid in
  let cell = a.Types.lib_cell in
  let bits = cell.Cell_lib.bits in
  (not a.Types.fixed) && (not a.Types.size_only)
  && ((not max_width_only)
     || bits = Library.max_width lib ~func_class:cell.Cell_lib.func_class)
  && bits >= 2
  && bits mod 2 = 0
  && (match a.Types.scan with
     | Some { Types.section = Some _; _ } -> false
     | Some { Types.section = None; _ } | None -> true)
  && List.exists
       (fun (c : Cell_lib.t) -> c.Cell_lib.scan = cell.Cell_lib.scan)
       (Library.cells_of lib ~func_class:cell.Cell_lib.func_class ~bits:(bits / 2))

let eligible dsg lib cid = eligible_gen ~max_width_only:true dsg lib cid

let half_cell lib (cell : Cell_lib.t) =
  let halves =
    List.filter
      (fun (c : Cell_lib.t) -> c.Cell_lib.scan = cell.Cell_lib.scan)
      (Library.cells_of lib ~func_class:cell.Cell_lib.func_class
         ~bits:(cell.Cell_lib.bits / 2))
  in
  (* keep the drive profile: smallest resistance not above the original *)
  let fitting =
    List.filter (fun (c : Cell_lib.t) -> c.Cell_lib.drive_res <= cell.Cell_lib.drive_res +. 1e-9) halves
  in
  let pick_by better = function
    | [] -> None
    | c0 :: rest ->
      Some
        (List.fold_left
           (fun (best : Cell_lib.t) (c : Cell_lib.t) ->
             if better c best then c else best)
           c0 rest)
  in
  (* closest to the original profile = the weakest fitting drive *)
  let weakest (c : Cell_lib.t) (b : Cell_lib.t) =
    c.Cell_lib.drive_res > b.Cell_lib.drive_res
    || (c.Cell_lib.drive_res = b.Cell_lib.drive_res && c.Cell_lib.area < b.Cell_lib.area)
  in
  let strongest (c : Cell_lib.t) (b : Cell_lib.t) =
    c.Cell_lib.drive_res < b.Cell_lib.drive_res
  in
  (match pick_by weakest fitting with
  | Some c -> Some c
  | None -> pick_by strongest halves)

let split_one ?(pin = false) pl occ lib cid =
  let dsg = Placement.design pl in
  let a = Design.reg_attrs dsg cid in
  let cell = a.Types.lib_cell in
  match half_cell lib cell with
  | None -> None
  | Some half ->
    let bits = cell.Cell_lib.bits in
    let hb = bits / 2 in
    let d = Array.init bits (fun b -> pin_net dsg cid (Types.Pin_d b)) in
    let q = Array.init bits (fun b -> pin_net dsg cid (Types.Pin_q b)) in
    let clock =
      match pin_net dsg cid Types.Pin_clock with
      | Some nid -> nid
      | None -> invalid_arg "Decompose: register without clock"
    in
    let reset = pin_net dsg cid Types.Pin_reset in
    let scan_enable = pin_net dsg cid Types.Pin_scan_enable in
    let corner = Placement.location pl cid in
    Legalizer.Occupancy.remove occ (Placement.footprint pl cid);
    Design.remove_cell dsg cid;
    Placement.remove pl cid;
    (* In pin mode the halves are frozen against re-composition
       ([size_only]): the recovery loop splits a timing-violating MBR,
       and letting a later round merge the halves straight back would
       oscillate. Sizing may still retune their drive. *)
    let attrs =
      { a with Types.lib_cell = half; size_only = pin || a.Types.size_only }
    in
    (* Centroid of the other pins on the half's D/Q nets — the point
       that minimizes first-order added wirelength. Computed after the
       original register left the placement, so its old location does
       not drag the box. *)
    let net_center lo =
      let pts = ref [] in
      let collect = function
        | Some nid ->
          List.iter
            (fun (_, _, pt) -> pts := pt :: !pts)
            (Placement.net_pin_points pl nid)
        | None -> ()
      in
      for b = lo to lo + hb - 1 do
        collect d.(b);
        collect q.(b)
      done;
      match !pts with
      | [] -> None
      | pts -> Some (Mbr_geom.Rect.center (Mbr_geom.Rect.of_points pts))
    in
    let make lo =
      let conn =
        {
          Design.d_nets = Array.sub d lo hb;
          q_nets = Array.sub q lo hb;
          clock;
          reset;
          scan_enable;
          scan_ins = [];
          scan_outs = [];
        }
      in
      let name = Printf.sprintf "split_%d" !split_counter in
      incr split_counter;
      let fallback =
        if lo = 0 then corner
        else Point.add corner (Point.make half.Cell_lib.width 0.0)
      in
      let desired =
        if pin then
          match net_center lo with Some p -> p | None -> fallback
        else fallback
      in
      let id = Design.add_register dsg name attrs conn in
      let spot =
        match Legalizer.Occupancy.find_nearest occ ~w:half.Cell_lib.width desired with
        | Some p -> p
        | None -> desired
      in
      Placement.set pl id spot;
      Legalizer.Occupancy.add occ (Placement.footprint pl id);
      id
    in
    let low = make 0 in
    let high = make hb in
    Some (low, high)

let split_targets ?pin pl lib targets =
  let occ = Legalizer.Occupancy.of_placement pl in
  let new_ids = ref [] in
  let n_split = ref 0 in
  List.iter
    (fun cid ->
      match split_one ?pin pl occ lib cid with
      | Some (a, b) ->
        incr n_split;
        new_ids := b :: a :: !new_ids
      | None -> ())
    targets;
  Mbr_obs.Metrics.incr ~by:!n_split m_splits;
  { n_split = !n_split; new_ids = List.rev !new_ids }

let split_max_width pl lib =
  let dsg = Placement.design pl in
  let targets =
    List.filter
      (fun cid -> Placement.is_placed pl cid && eligible dsg lib cid)
      (Design.registers dsg)
  in
  Mbr_obs.Metrics.incr ~by:(List.length targets) m_requested;
  split_targets pl lib targets

let splittable pl lib cid =
  Placement.is_placed pl cid
  && eligible_gen ~max_width_only:false (Placement.design pl) lib cid

let split_cells ?(pin = false) pl lib cids =
  let dsg = Placement.design pl in
  Mbr_obs.Metrics.incr ~by:(List.length cids) m_requested;
  let targets =
    List.filter
      (fun cid ->
        Placement.is_placed pl cid
        && eligible_gen ~max_width_only:false dsg lib cid)
      cids
  in
  split_targets ~pin pl lib targets
