(** The placement-aware candidate weight of §3.2.

    For a candidate MBR M with [b] total bits whose test polygon (the
    convex hull of its constituent registers' footprint corners)
    contains the centers of [n] foreign registers:

    {v w = 1/b          when n = 0        (clean: bigger is better)
       w = b * 2^n      when 0 < n < b    (intertwined: exponentially bad)
       w = infinity     when n >= b       (rejected outright) v}

    Singleton candidates — keeping an existing register as is, the
    paper's "Original" column in Fig. 3 — cost exactly 1 regardless of
    width: the objective counts registers, and only {e new} merges earn
    the 1/b discount. *)

val test_polygon : Mbr_geom.Rect.t list -> Mbr_geom.Point.t list
(** Convex hull of the footprints' corners. *)

val count_blockers :
  polygon:Mbr_geom.Point.t list ->
  constituents:Mbr_netlist.Types.cell_id list ->
  index:Mbr_netlist.Types.cell_id Spatial.t ->
  int
(** Registers in [index] whose center lies inside [polygon], minus the
    constituents. Reads [index] through {!Spatial.query_rect} only —
    safe from multiple domains under the read-only sharing invariant
    of {!Allocate}. *)

val formula : bits:int -> blockers:int -> float
(** The three-case weight above (for multi-register candidates).
    Raises [Invalid_argument] when [bits <= 0]. *)

val candidate_weight :
  n_members:int -> bits:int -> blockers:int -> float
(** [formula] for [n_members >= 2]; exactly 1.0 for a singleton. *)
