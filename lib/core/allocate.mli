(** MBR allocation: K-partition the compatibility graph (bound 30,
    §3), enumerate candidates per block, and pick the winning subset.

    Three allocators:
    - [`Ilp]: the paper's weighted set-partitioning ILP (§3.1), solved
      exactly per block by {!Mbr_ilp.Set_partition};
    - [`Greedy_share]: greedy weighted set partitioning over the {e
      same} candidates and weights (best weight-per-register first) —
      the Fig. 6 comparison, isolating what exact optimization buys;
    - [`Clique]: the external [8]/[12]-style maximal-clique merging
      heuristic ({!Baseline}), which ignores the weights entirely.

    Every composable register is covered exactly once: either by a
    selected merge or by its singleton. *)

type config = {
  candidate : Candidate.config;
  partition_bound : int;  (** default 30 *)
  node_limit : int;  (** branch-and-bound cap per block *)
}

val default_config : config

type selection = {
  merges : Candidate.t list;  (** selected multi-register candidates *)
  kept : int list;  (** graph nodes kept as they are *)
  cost : float;  (** ILP objective over all blocks *)
  n_blocks : int;
  n_candidates : int;  (** enumerated across all blocks *)
  all_optimal : bool;
      (** every block solved to proven optimality; only the [`Ilp] mode
          can ever claim this — the heuristic modes report [false] *)
}

val run :
  ?mode:[ `Ilp | `Greedy_share | `Clique ] ->
  ?config:config ->
  Compat.graph ->
  lib:Mbr_liberty.Library.t ->
  blocker_index:Mbr_netlist.Types.cell_id Spatial.t ->
  selection
