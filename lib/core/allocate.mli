(** MBR allocation: K-partition the compatibility graph (bound 30,
    §3), enumerate candidates per block, and pick the winning subset.

    Three allocators:
    - [`Ilp]: the paper's weighted set-partitioning ILP (§3.1), solved
      exactly per block by {!Mbr_ilp.Set_partition};
    - [`Greedy_share]: greedy weighted set partitioning over the {e
      same} candidates and weights (best weight-per-register first) —
      the Fig. 6 comparison, isolating what exact optimization buys;
    - [`Clique]: the external [8]/[12]-style maximal-clique merging
      heuristic ({!Baseline}), which ignores the weights entirely.

    Every composable register is covered exactly once: either by a
    selected merge or by its singleton.

    {2 The per-block pipeline}

    The §3 formulation is independent per partition block, so the
    allocator is structured as pure block-scoped pieces:

    {v blocks  = Kpart.partition graph               (serial)
       results = map (solve_block graph ...) blocks  (serial or pooled)
       selection = reduce results                    (serial) v}

    {b Read-only sharing invariant.} [solve_block] only {e reads} the
    inputs it shares with its siblings — [graph] (both [infos] and the
    adjacency), the library, and the blocker index. None of those are
    written {e during the fan-out}: the compat graph is frozen while
    blocks are being solved and revised only between fan-outs (an ECO
    session swaps in a fresh value from {!Compat.refresh}, it never
    mutates one in place), the library is immutable, and the blocker
    index is fully reconciled before {!run} is called and untouched
    until it returns. Everything [solve_block] mutates (hash tables,
    refs, the branch-and-bound state) is created inside the call. This
    is what makes it legal to fan the blocks out over a
    {!Mbr_util.Pool} of domains, and it must be preserved by future
    changes (see also the notes on {!Candidate.enumerate}, {!Weight}
    and {!Spatial.query_rect}).

    {b Determinism.} Results are stored by block index and [reduce]
    folds them in block order, performing exactly the additions and
    list consing the serial loop performed — so the selection
    (merges, kept, cost, counts) is bit-identical for every [jobs]
    value, and [jobs = 1] takes the serial code path outright (no
    domain is spawned, no pool is entered). *)

type config = {
  candidate : Candidate.config;
  partition_bound : int;  (** default 30 *)
  node_limit : int;  (** branch-and-bound cap per block *)
  jobs : int;
      (** worker domains for the per-block fan-out; [1] (the default)
          solves the blocks serially on the calling domain *)
  warm_start : bool;
      (** let {!run_cached} seed a dirty block's branch-and-bound with
          the previous generation's cover when the block's member set
          is unchanged (a near-hit: same registers, perturbed
          content). Off by default — warm starts never change a proven
          optimum, but under a tripped node limit the returned
          incumbent may differ from a cold solve's. *)
}

val default_config : config

type block_result = {
  chosen : Candidate.t list;  (** the block's cover, merges and singletons *)
  block_cost : float;  (** ILP objective over [chosen] *)
  optimal : bool;  (** proven optimal (only ever true for [`Ilp]) *)
  block_candidates : int;  (** candidates enumerated for this block *)
  solve_time_s : float;  (** wall time of this block's solve *)
}

type time_stats = {
  total_s : float;  (** sum of per-block solve times *)
  mean_s : float;  (** 0 when there are no blocks *)
  max_s : float;  (** the slowest block — the parallel critical path *)
}

type selection = {
  merges : Candidate.t list;  (** selected multi-register candidates *)
  kept : int list;  (** graph nodes kept as they are *)
  cost : float;  (** ILP objective over all blocks *)
  n_blocks : int;
  n_candidates : int;  (** enumerated across all blocks *)
  all_optimal : bool;
      (** every block solved to proven optimality; only the [`Ilp] mode
          can ever claim this — the heuristic modes report [false] *)
  block_times : time_stats;
      (** per-block solve-time histogram; the only field of the
          selection that is {e not} bit-identical across [jobs]
          settings (it measures, it does not decide) *)
}

val solve_block :
  ?block_id:int ->
  ?mode:[ `Ilp | `Greedy_share | `Clique ] ->
  ?cancel:Mbr_util.Cancel.t ->
  ?warm_hint:(Mbr_netlist.Types.cell_id list * int) list ->
  config ->
  Compat.graph ->
  lib:Mbr_liberty.Library.t ->
  blocker_index:Mbr_netlist.Types.cell_id Spatial.t ->
  block:int list ->
  block_result
(** Enumerate and solve one partition block. Pure with respect to its
    arguments (reads only — see the sharing invariant above); safe to
    call concurrently from multiple domains on the same graph.

    Each call runs under an ["alloc.solve_block"] trace span carrying
    the block id ([block_id], default [-1]; {!run} and {!run_cached}
    pass the block's array index), size and mode; [solve_time_s] is
    the span's own duration, and it also feeds the
    [alloc.block_solve_s] histogram.

    [cancel] reaches the [`Ilp] branch-and-bound (see
    {!Mbr_ilp.Set_partition.solve}): a tripped token makes the solve
    return its current incumbent cover, still exact, just unproven
    ([optimal = false]). The heuristic modes ignore it — they are
    already a single cheap pass.

    [warm_hint] (only meaningful for [`Ilp]) describes a cover believed
    close to optimal as [(member cids, target bits)] per candidate;
    enumerated candidates matching an entry are passed to
    {!Mbr_ilp.Set_partition.solve} as its [warm] incumbent seed (each
    entry matches at most once, preserving the hint's disjointness).
    Stale or unmatched hints are harmless — the kernel validates per
    component and falls back to its greedy seed. *)

val reduce :
  mode:[ `Ilp | `Greedy_share | `Clique ] -> block_result array -> selection
(** Deterministic merge of per-block results, in block (array) order.
    Exposed for tests and for callers that run [solve_block]
    themselves. *)

val run :
  ?mode:[ `Ilp | `Greedy_share | `Clique ] ->
  ?config:config ->
  ?cancel:Mbr_util.Cancel.t ->
  Compat.graph ->
  lib:Mbr_liberty.Library.t ->
  blocker_index:Mbr_netlist.Types.cell_id Spatial.t ->
  selection
(** [partition → solve_block per block → reduce]. With
    [config.jobs >= 2] the blocks are fanned out over a
    {!Mbr_util.Pool}; the selection is identical either way.

    The same [cancel] token is handed to every block solve (its flag is
    an atomic, so the pool workers all see one {!Mbr_util.Cancel.cancel}
    at their next search node): a cancelled run still returns a
    complete, feasible selection — each in-flight block falls back to
    its incumbent, remaining blocks return their greedy seed almost
    immediately (blocks whose incumbent meets the root LP bound never
    search at all and stay proven optimal). *)

(** {2 Block-level result reuse (ECO sessions)} *)

type cache
(** Memo of solved blocks keyed by a content hash of everything
    [solve_block] reads about a block: the mode, the candidate/solver
    knobs, the member register snapshots in block order, the in-block
    adjacency (as member positions), and the blocker-index entries
    inside the union bounding box of the member footprints — the
    superset of what any weight query for the block can observe. Cache
    hits are therefore exact: the cached cover is what [solve_block]
    would recompute, modulo node renumbering (undone via the stable
    cell ids). One cache must only ever be used with one library value.
    Not domain-safe; owned and driven by the session's leader domain. *)

val create_cache : unit -> cache

val cache_size : cache -> int
(** Entries currently held (= blocks of the last [run_cached]). *)

type cache_stats = {
  blocks_resolved : int;  (** blocks actually solved this run *)
  blocks_reused : int;  (** blocks spliced in from the cache *)
}

val run_cached :
  ?mode:[ `Ilp | `Greedy_share | `Clique ] ->
  ?config:config ->
  ?cancel:Mbr_util.Cancel.t ->
  cache ->
  Compat.graph ->
  lib:Mbr_liberty.Library.t ->
  blocker_index:Mbr_netlist.Types.cell_id Spatial.t ->
  selection * cache_stats
(** {!run}, but blocks whose content hash matches a previous run are
    spliced in from the cache and only the rest are solved (serially or
    over the pool, per [config.jobs]); the splice happens before the
    same deterministic {!reduce}, so the selection is identical to an
    uncached {!run} on the same inputs (property-tested). The cache is
    then swapped to exactly this run's blocks (generational eviction),
    so entries for regions the design drifted away from are dropped.
    The one observable difference: a reused block reports its original
    [solve_time_s], so [block_times] measures solve cost, not this
    run's wall time.

    Hits and misses also bump the [alloc.cache.hit] /
    [alloc.cache.miss] registry counters (the same split this function
    returns as {!cache_stats}, accumulated across rounds).

    A run whose [cancel] token tripped returns its (complete, feasible)
    selection as {!run} does, but leaves the cache generation {e
    unswapped}: cancelled incumbents depend on where in time the token
    tripped, and a cached entry must stay the deterministic result for
    its key — the next uncancelled run rebuilds the generation.

    With [config.warm_start] set, a missed block whose sorted member
    cids match a block of the previous generation (a {e near-hit}: same
    registers, different placement/slack content) is re-solved with the
    old cover as its warm-start incumbent; each component the kernel
    actually seeds this way bumps [ilp.warm_start_hits]. *)
