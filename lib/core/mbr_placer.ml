module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Cell_lib = Mbr_liberty.Cell
module Piecewise = Mbr_lp.Piecewise
module Simplex = Mbr_lp.Simplex

type conn_box = { offset : Point.t; box : Rect.t }

let net_box pl ~exclude nid =
  let pts =
    List.filter_map
      (fun (_, cid, pt) -> if List.mem cid exclude then None else Some pt)
      (Placement.net_pin_points pl nid)
  in
  match pts with [] -> None | _ -> Some (Rect.of_points pts)

let conn_boxes pl ~cell ~assignment ~exclude =
  List.concat_map
    (fun (bit, d_net, q_net) ->
      let of_net offset nid =
        match net_box pl ~exclude nid with
        | Some box -> [ { offset; box } ]
        | None -> []
      in
      let d =
        match d_net with
        | Some nid -> of_net (Cell_lib.d_pin_offset cell bit) nid
        | None -> []
      in
      let q =
        match q_net with
        | Some nid -> of_net (Cell_lib.q_pin_offset cell bit) nid
        | None -> []
      in
      d @ q)
    assignment

let corner_bounds ~cell ~(region : Rect.t) =
  let xlo = region.Rect.lx and xhi = region.Rect.hx -. cell.Cell_lib.width in
  let ylo = region.Rect.ly and yhi = region.Rect.hy -. cell.Cell_lib.height in
  (* A region tighter than the footprint degenerates to its corner. *)
  let xhi = Float.max xlo xhi and yhi = Float.max ylo yhi in
  ((xlo, xhi), (ylo, yhi))

let optimal_corner ~cell ~conns ~region =
  let (xlo, xhi), (ylo, yhi) = corner_bounds ~cell ~region in
  let xterms =
    List.map
      (fun c ->
        Piecewise.
          {
            lo = c.box.Rect.lx;
            hi = c.box.Rect.hx;
            offset = c.offset.Point.x;
            weight = 1.0;
          })
      conns
  in
  let yterms =
    List.map
      (fun c ->
        Piecewise.
          {
            lo = c.box.Rect.ly;
            hi = c.box.Rect.hy;
            offset = c.offset.Point.y;
            weight = 1.0;
          })
      conns
  in
  let x, fx = Piecewise.minimize ~bounds:(xlo, xhi) xterms in
  let y, fy = Piecewise.minimize ~bounds:(ylo, yhi) yterms in
  (Point.make x y, fx +. fy)

let lp_corner ~cell ~conns ~region =
  let (xlo, xhi), (ylo, yhi) = corner_bounds ~cell ~region in
  if xhi < xlo || yhi < ylo then None
  else begin
    let lp = Simplex.create () in
    let x = Simplex.add_var ~lb:xlo ~ub:xhi lp in
    let y = Simplex.add_var ~lb:ylo ~ub:yhi lp in
    (* wl_i = (zxh - zxl) + (zyh - zyl) with
       zxh >= box.hx, zxh >= x + dx; zxl <= box.lx, zxl <= x + dx *)
    List.iter
      (fun c ->
        let zxh = Simplex.add_var ~lb:neg_infinity ~obj:1.0 lp in
        let zxl = Simplex.add_var ~lb:neg_infinity ~obj:(-1.0) lp in
        let zyh = Simplex.add_var ~lb:neg_infinity ~obj:1.0 lp in
        let zyl = Simplex.add_var ~lb:neg_infinity ~obj:(-1.0) lp in
        Simplex.add_constraint lp [ (zxh, 1.0) ] Simplex.Ge c.box.Rect.hx;
        Simplex.add_constraint lp [ (zxh, 1.0); (x, -1.0) ] Simplex.Ge c.offset.Point.x;
        Simplex.add_constraint lp [ (zxl, 1.0) ] Simplex.Le c.box.Rect.lx;
        Simplex.add_constraint lp [ (zxl, 1.0); (x, -1.0) ] Simplex.Le c.offset.Point.x;
        Simplex.add_constraint lp [ (zyh, 1.0) ] Simplex.Ge c.box.Rect.hy;
        Simplex.add_constraint lp [ (zyh, 1.0); (y, -1.0) ] Simplex.Ge c.offset.Point.y;
        Simplex.add_constraint lp [ (zyl, 1.0) ] Simplex.Le c.box.Rect.ly;
        Simplex.add_constraint lp [ (zyl, 1.0); (y, -1.0) ] Simplex.Le c.offset.Point.y)
      conns;
    match Simplex.solve lp with
    | { Simplex.status = Simplex.Optimal; objective; values; _ } ->
      Some (Point.make values.(x) values.(y), objective)
    | { Simplex.status = Simplex.Infeasible | Simplex.Unbounded; _ } -> None
  end
