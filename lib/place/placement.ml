module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Cell_lib = Mbr_liberty.Cell
module Vec = Mbr_util.Vec

(* Placed pins of one net: the points every geometric net query needs,
   plus their bounding box. Rebuilt lazily after an invalidation. *)
type net_cache = {
  nc_pts : (Types.pin_id * Types.cell_id * Point.t) list;
  nc_box : Rect.t option;
}

type t = {
  fp : Floorplan.t;
  dsg : Design.t;
  mutable loc : Point.t option array;
      (* dense cell_id -> location; grown on demand. An array beats a
         hash table here because [location] sits under every wire-delay
         and net-box computation — the hottest lookups in the repo. *)
  moves : Types.cell_id Vec.t;  (* every set/remove, in order *)
  nets : (Types.net_id, net_cache) Hashtbl.t;
  mutable dsg_cursor : int;  (* design edits already applied to [nets] *)
}

let create fp dsg =
  {
    fp;
    dsg;
    loc = Array.make (max 1024 (Design.n_cells dsg)) None;
    moves = Vec.create ();
    nets = Hashtbl.create 256;
    dsg_cursor = Design.revision dsg;
  }

let floorplan t = t.fp

let design t = t.dsg

let revision t = Vec.length t.moves

let moves_since t cursor = Vec.suffix t.moves cursor

(* Drop cached boxes of every net the cell's pins touch. *)
let invalidate_cell_nets t id =
  List.iter
    (fun pid ->
      match (Design.pin t.dsg pid).Types.p_net with
      | Some nid -> Hashtbl.remove t.nets nid
      | None -> ())
    (Design.pins_of t.dsg id)

(* Fold pending design edits into the cache before serving from it. *)
let sync_design t =
  let rev = Design.revision t.dsg in
  if rev <> t.dsg_cursor then begin
    List.iter
      (function
        | Design.Net_changed nid -> Hashtbl.remove t.nets nid
        | Design.Cell_retyped id ->
          (* pin offsets follow the library cell's pin map *)
          invalidate_cell_nets t id
        | Design.Cell_added _ | Design.Cell_removed _ ->
          (* connectivity deltas arrive as Net_changed alongside *)
          ())
      (Design.edits_since t.dsg t.dsg_cursor);
    t.dsg_cursor <- rev
  end

let set t id p =
  if id >= Array.length t.loc then begin
    let b = Array.make (max (2 * Array.length t.loc) (id + 1)) None in
    Array.blit t.loc 0 b 0 (Array.length t.loc);
    t.loc <- b
  end;
  t.loc.(id) <- Some p;
  invalidate_cell_nets t id;
  ignore (Vec.push t.moves id)

let remove t id =
  if id < Array.length t.loc && t.loc.(id) <> None then begin
    t.loc.(id) <- None;
    invalidate_cell_nets t id;
    ignore (Vec.push t.moves id)
  end

let location t id =
  match if id < Array.length t.loc then t.loc.(id) else None with
  | Some p -> p
  | None -> raise Not_found

let location_opt t id = if id < Array.length t.loc then t.loc.(id) else None

let is_placed t id = id < Array.length t.loc && t.loc.(id) <> None

let footprint t id =
  let p = location t id in
  let w, h = Design.cell_size t.dsg id in
  Rect.make ~lx:p.Point.x ~ly:p.Point.y ~hx:(p.Point.x +. w) ~hy:(p.Point.y +. h)

let center t id = Rect.center (footprint t id)

let pin_location t pid =
  let p = Design.pin t.dsg pid in
  let cid = p.Types.p_cell in
  let corner = location t cid in
  let c = Design.cell t.dsg cid in
  match c.Types.c_kind with
  | Types.Register a ->
    let lib = a.Types.lib_cell in
    let off =
      match p.Types.p_kind with
      | Types.Pin_d i -> Cell_lib.d_pin_offset lib i
      | Types.Pin_q i -> Cell_lib.q_pin_offset lib i
      | Types.Pin_clock -> Cell_lib.clock_pin_offset lib
      | Types.Pin_reset | Types.Pin_scan_in _ | Types.Pin_scan_out _
      | Types.Pin_scan_enable | Types.Pin_in _ | Types.Pin_out | Types.Pin_port
        ->
        Point.make (lib.Cell_lib.width /. 2.0) (lib.Cell_lib.height /. 2.0)
    in
    Point.add corner off
  | Types.Comb _ | Types.Clock_root | Types.Clock_gate _ | Types.Port _ ->
    let w, h = Design.cell_size t.dsg cid in
    Point.add corner (Point.make (w /. 2.0) (h /. 2.0))

let net_cache_of t nid =
  sync_design t;
  match Hashtbl.find_opt t.nets nid with
  | Some c -> c
  | None ->
    let pts =
      List.filter_map
        (fun pid ->
          let p = Design.pin t.dsg pid in
          let cid = p.Types.p_cell in
          if is_placed t cid then Some (pid, cid, pin_location t pid)
          else None)
        (Design.net t.dsg nid).Types.n_pins
    in
    let box =
      match pts with
      | [] -> None
      | _ -> Some (Rect.of_points (List.map (fun (_, _, p) -> p) pts))
    in
    let c = { nc_pts = pts; nc_box = box } in
    Hashtbl.replace t.nets nid c;
    c

let net_pin_points t nid = (net_cache_of t nid).nc_pts

let net_box t nid = (net_cache_of t nid).nc_box

let iter f t =
  Array.iteri
    (fun id loc ->
      match loc with
      | Some p when not (Design.cell t.dsg id).Types.c_dead -> f id p
      | Some _ | None -> ())
    t.loc

let placed_registers t =
  List.filter (fun id -> is_placed t id) (Design.registers t.dsg)

let utilization t =
  let area = ref 0.0 in
  iter (fun id _ -> area := !area +. Design.cell_area t.dsg id) t;
  !area /. Rect.area t.fp.Floorplan.core

let overlapping_registers t =
  let regs = placed_registers t in
  let boxed = List.map (fun id -> (id, footprint t id)) regs in
  (* Sweep by lx to avoid the full quadratic comparison. *)
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare a.Rect.lx b.Rect.lx) boxed
  in
  let rec sweep acc = function
    | [] -> acc
    | (id, r) :: rest ->
      let rec scan acc = function
        | [] -> acc
        | (id', r') :: more ->
          if r'.Rect.lx >= r.Rect.hx then acc
          else begin
            let acc =
              if Rect.overlaps_strictly r r' then (id, id') :: acc else acc
            in
            scan acc more
          end
      in
      sweep (scan acc rest) rest
  in
  List.rev (sweep [] sorted)

let copy t =
  {
    t with
    loc = Array.copy t.loc;
    moves = Vec.copy t.moves;
    nets = Hashtbl.copy t.nets;
  }
