module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Fmap = Map.Make (Float)

module Occupancy = struct
  (* Per row, the occupied x-extent twice over: [raw] keeps every added
     rectangle exactly as handed in (so [remove] can drop the exact
     interval it was given, tolerance and all), while [occ] is the
     merged disjoint union keyed by interval start — the structure
     [find_nearest] descends in O(log intervals) instead of rebuilding
     the whole row's gap list per query. [used] is the measure of the
     union clipped to the core x-extent: an O(1) upper bound on the
     widest free gap in the row, so packed rows are skipped without
     touching the map at all. *)
  type row = {
    mutable raw : (float * float) list; (* sorted x-intervals, as added *)
    mutable occ : float Fmap.t; (* merged disjoint: start -> end *)
    mutable used : float; (* measure of the union ∩ core x-extent *)
  }

  type t = { fp : Floorplan.t; rows : row array }

  (* Rows a rectangle's interior touches: floor-based so a cell lying
     exactly on rows [i, i+k) marks exactly those rows (row_of_y rounds
     to the nearest row, which is the wrong semantics here). *)
  let rows_of_rect t (r : Rect.t) =
    let fp = t.fp in
    let core = fp.Floorplan.core in
    let row_floor y =
      let i = int_of_float (Float.floor ((y -. core.Rect.ly) /. fp.Floorplan.row_height)) in
      max 0 (min (Floorplan.n_rows fp - 1) i)
    in
    let lo = row_floor (r.Rect.ly +. 1e-6) in
    let hi = row_floor (r.Rect.hy -. 1e-6) in
    List.init (hi - lo + 1) (fun k -> lo + k)

  let create fp =
    {
      fp;
      rows =
        Array.init
          (max 1 (Floorplan.n_rows fp))
          (fun _ -> { raw = []; occ = Fmap.empty; used = 0.0 });
    }

  let insert_interval intervals (lo, hi) =
    let rec go = function
      | [] -> [ (lo, hi) ]
      | (a, b) :: rest when a < lo -> (a, b) :: go rest
      | rest -> (lo, hi) :: rest
    in
    go intervals

  let clip_span t lo hi =
    let core = t.fp.Floorplan.core in
    let l = Float.max lo core.Rect.lx and h = Float.min hi core.Rect.hx in
    Float.max 0.0 (h -. l)

  (* Merge [lo, hi] into the row's union. Endpoints stay exact: the
     merged end is a Float.max over member ends (associative and
     commutative), so any merge order yields the same float the linear
     left-to-right cursor scan used to compute. Intervals separated by
     a strictly positive gap stay separate — a zero gap merges, which
     is exactly when the old scan emitted no free gap between them. *)
  let absorb t row lo hi =
    let rec go occ lo hi removed =
      match Fmap.find_last_opt (fun k -> k <= hi) occ with
      | Some (a, b) when b >= lo ->
        go (Fmap.remove a occ) (Float.min a lo) (Float.max b hi)
          (removed +. clip_span t a b)
      | _ ->
        row.used <- row.used +. (clip_span t lo hi -. removed);
        Fmap.add lo hi occ
    in
    row.occ <- go row.occ lo hi 0.0

  let rebuild t row =
    row.occ <- Fmap.empty;
    row.used <- 0.0;
    List.iter (fun (a, b) -> absorb t row a b) row.raw

  let add t r =
    List.iter
      (fun i ->
        let row = t.rows.(i) in
        row.raw <- insert_interval row.raw (r.Rect.lx, r.Rect.hx);
        absorb t row r.Rect.lx r.Rect.hx)
      (rows_of_rect t r)

  let remove t r =
    List.iter
      (fun i ->
        let row = t.rows.(i) in
        let eq (a, b) =
          Float.abs (a -. r.Rect.lx) < 1e-9 && Float.abs (b -. r.Rect.hx) < 1e-9
        in
        let rec drop_first = function
          | [] -> []
          | iv :: rest -> if eq iv then rest else iv :: drop_first rest
        in
        row.raw <- drop_first row.raw;
        rebuild t row)
      (rows_of_rect t r)

  let of_placement pl =
    let t = create (Placement.floorplan pl) in
    List.iter (fun id -> add t (Placement.footprint pl id)) (Placement.placed_registers pl);
    t

  let row_free t row (lo, hi) =
    List.for_all (fun (a, b) -> b <= lo +. 1e-9 || a >= hi -. 1e-9) t.rows.(row).raw

  let fits t r =
    Floorplan.inside t.fp r
    && List.for_all (fun row -> row_free t row (r.Rect.lx, r.Rect.hx)) (rows_of_rect t r)

  (* Nearest x position in a row where a width-w cell fits: locate the
     free gap around [desired] in the merged map and walk outward gap by
     gap, pruning on the best cost so far — O(log m + gaps visited)
     instead of materializing every gap in the row. Gap boundaries are
     exactly the floats the old linear cursor scan produced (a gap
     starts at Float.max xmin (previous merged end)), and equal-cost
     ties keep the rightmost gap, like the old right-to-left gap list
     did. *)
  let nearest_x_in_row row ~w ~xmin ~xmax ~desired =
    if xmax -. xmin < w -. 1e-9 then None
    else begin
      let occ = row.occ in
      (* best = (x, cost, gap lo): min cost, ties to the larger gap lo *)
      let best = ref None in
      let try_gap glo ghi =
        if ghi -. glo >= w -. 1e-9 then begin
          let x = Float.max glo (Float.min (ghi -. w) desired) in
          let cost = Float.abs (x -. desired) in
          let better =
            match !best with
            | Some (_, c, g) -> cost < c || (cost = c && glo > g)
            | None -> true
          in
          if better then best := Some (x, cost, glo)
        end
      in
      let cost_bound () =
        match !best with Some (_, c, _) -> c | None -> infinity
      in
      (* rightward: [cursor] is the scan cursor (Float.max of xmin and
         every interval end at or left of here); each step emits the
         free gap ahead, then jumps past the next interval. Gaps
         further right cost at least [cursor - desired], so stop once
         that exceeds the best (ties can still win via the gap-lo
         tie-break, hence <=). *)
      let rec walk_right cursor =
        if cursor -. desired <= cost_bound () then
          match Fmap.find_first_opt (fun k -> k > cursor) occ with
          | Some (a, b) ->
            if a > cursor then try_gap cursor (Float.min a xmax);
            walk_right b
          | None -> if cursor < xmax then try_gap cursor xmax
      in
      (* leftward from the interval starting at [k0]: the free gap
         ending at that interval's start, then recurse past the
         previous interval. A gap ending at ghi costs at least
         [desired - (ghi - w)], monotone in the walk. *)
      let rec walk_left k0 =
        if k0 > xmin then begin
          let ghi = Float.min k0 xmax in
          if desired -. (ghi -. w) <= cost_bound () then begin
            match Fmap.find_last_opt (fun k -> k < k0) occ with
            | Some (a, b) ->
              let glo = Float.max xmin b in
              if k0 > glo then try_gap glo ghi;
              walk_left a
            | None -> try_gap xmin ghi
          end
        end
      in
      let start = Float.max xmin (Float.min desired xmax) in
      (match Fmap.find_last_opt (fun k -> k <= start) occ with
      | Some (a0, b0) ->
        walk_right (Float.max xmin b0);
        walk_left a0
      | None -> walk_right xmin);
      Option.map (fun (x, _, _) -> x) !best
    end

  let find_nearest t ?region ~w (desired : Point.t) =
    let fp = t.fp in
    let core = fp.Floorplan.core in
    let h = fp.Floorplan.row_height in
    let xmin, xmax, ymin, ymax =
      match region with
      | Some r ->
        ( Float.max core.Rect.lx r.Rect.lx,
          Float.min (core.Rect.hx -. w) (r.Rect.hx -. w),
          Float.max core.Rect.ly r.Rect.ly,
          Float.min (core.Rect.hy -. h) (r.Rect.hy -. h) )
      | None ->
        (core.Rect.lx, core.Rect.hx -. w, core.Rect.ly, core.Rect.hy -. h)
    in
    if xmax < xmin -. 1e-9 || ymax < ymin -. 1e-9 then None
    else begin
      let n_rows = Floorplan.n_rows fp in
      let core_w = core.Rect.hx -. core.Rect.lx in
      let desired_row = Floorplan.row_of_y fp desired.Point.y in
      let best = ref None in
      let consider row =
        if row >= 0 && row < n_rows then begin
          let y = Floorplan.row_y fp row in
          if y >= ymin -. 1e-9 && y <= ymax +. 1e-9 then begin
            let dy = Float.abs (y -. desired.Point.y) in
            let prune =
              match !best with Some (_, c) -> dy >= c | None -> false
            in
            (* the query window is inside the core x-extent, so no gap
               can be wider than the row's unoccupied core width: a
               packed row is rejected in O(1) *)
            let rw = t.rows.(row) in
            if (not prune) && core_w -. rw.used >= w -. 1e-9 then begin
              match
                nearest_x_in_row rw ~w ~xmin ~xmax:(xmax +. w) ~desired:desired.Point.x
              with
              | Some x ->
                let cost = dy +. Float.abs (x -. desired.Point.x) in
                (match !best with
                | Some (_, c) when c <= cost -> ()
                | Some _ | None -> best := Some (Point.make x y, cost))
              | None -> ()
            end
          end
        end
      in
      (* Expand outward from the desired row; dy grows monotonically so
         the prune above terminates the scan early. *)
      let max_radius = n_rows in
      let rec expand r =
        if r <= max_radius then begin
          let continue_ =
            match !best with
            | Some (_, c) -> float_of_int (r - 1) *. fp.Floorplan.row_height <= c
            | None -> true
          in
          if continue_ then begin
            consider (desired_row + r);
            if r > 0 then consider (desired_row - r);
            expand (r + 1)
          end
        end
      in
      expand 0;
      Option.map fst !best
    end
end

let legalize_all pl =
  let dsg = Placement.design pl in
  let fp = Placement.floorplan pl in
  let occ = Occupancy.create fp in
  let cells =
    List.filter (fun id -> Placement.is_placed pl id) (Design.live_cells dsg)
  in
  let priority id =
    match (Design.cell dsg id).Types.c_kind with
    | Types.Register _ -> 0
    | Types.Clock_gate _ -> 1
    | Types.Comb _ -> 2
    | Types.Clock_root | Types.Port _ -> 3
  in
  let keyed =
    List.map (fun id -> ((priority id, Placement.location pl id), id)) cells
  in
  let ordered = List.map snd (List.sort compare keyed) in
  List.iter
    (fun id ->
      let w, h = Design.cell_size dsg id in
      if w > 0.0 && h > 0.0 then begin
        let desired = Placement.location pl id in
        match Occupancy.find_nearest occ ~w desired with
        | Some p ->
          let p = Point.make (Floorplan.snap_x fp p.Point.x) p.Point.y in
          Placement.set pl id p;
          Occupancy.add occ (Placement.footprint pl id)
        | None -> () (* no room: leave as-is; caller can check overlaps *)
      end)
    ordered

let total_displacement ~before ~after =
  let acc = ref 0.0 in
  Placement.iter
    (fun id p ->
      match Placement.location_opt after id with
      | Some q -> acc := !acc +. Point.manhattan p q
      | None -> ())
    before;
  !acc
