(** Cell locations for a design: lower-left corners keyed by cell id,
    with footprint and pin-location queries. A placement does not own
    the design; composition edits both in step. *)

type t

val create : Floorplan.t -> Mbr_netlist.Design.t -> t

val floorplan : t -> Floorplan.t

val design : t -> Mbr_netlist.Design.t

val set : t -> Mbr_netlist.Types.cell_id -> Mbr_geom.Point.t -> unit
(** Place (or move) a cell's lower-left corner. *)

val remove : t -> Mbr_netlist.Types.cell_id -> unit

val location : t -> Mbr_netlist.Types.cell_id -> Mbr_geom.Point.t
(** Raises [Not_found] for unplaced cells. *)

val location_opt : t -> Mbr_netlist.Types.cell_id -> Mbr_geom.Point.t option

val is_placed : t -> Mbr_netlist.Types.cell_id -> bool

val footprint : t -> Mbr_netlist.Types.cell_id -> Mbr_geom.Rect.t
(** Cell rectangle at its current location; raises [Not_found] when
    unplaced. *)

val center : t -> Mbr_netlist.Types.cell_id -> Mbr_geom.Point.t

val pin_location : t -> Mbr_netlist.Types.pin_id -> Mbr_geom.Point.t
(** Absolute pin coordinate: cell corner + pin offset. Register pins
    use the library-cell pin map; other cells use their center.
    Raises [Not_found] when the owning cell is unplaced. *)

val revision : t -> int
(** Monotonically increasing count of {!set}/{!remove} calls. Together
    with {!moves_since} this is the placement half of the edit
    notification surface the incremental STA engine consumes. *)

val moves_since : t -> int -> Mbr_netlist.Types.cell_id list
(** Cells placed, moved or removed at or after the given revision,
    oldest first (duplicates possible). *)

val net_pin_points : t -> Mbr_netlist.Types.net_id -> (Mbr_netlist.Types.pin_id * Mbr_netlist.Types.cell_id * Mbr_geom.Point.t) list
(** The net's placed pins with their absolute locations, cached per net
    and invalidated automatically by cell moves and design edits
    (connectivity or register retype). Dead cells never appear: their
    pins are disconnected when tombstoned. *)

val net_box : t -> Mbr_netlist.Types.net_id -> Mbr_geom.Rect.t option
(** Bounding box of {!net_pin_points} ([None] when no pin is placed);
    served from the same cache. *)

val iter : (Mbr_netlist.Types.cell_id -> Mbr_geom.Point.t -> unit) -> t -> unit
(** Live placed cells only. *)

val placed_registers : t -> Mbr_netlist.Types.cell_id list

val utilization : t -> float
(** Total placed live-cell area / core area. *)

val overlapping_registers : t -> (Mbr_netlist.Types.cell_id * Mbr_netlist.Types.cell_id) list
(** Pairs of live registers whose footprints overlap with positive area
    — the legality check the composition flow must keep empty. *)

val copy : t -> t
(** Snapshot of the locations (shares design/floorplan). *)
