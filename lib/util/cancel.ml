type t = {
  flag : bool Atomic.t;
  deadline_s : float;  (* Mbr_obs.Clock.now_s deadline; infinity = none *)
  budget : int Atomic.t;  (* checks remaining before auto-trip *)
  has_budget : bool;  (* avoids a fetch_and_add per check on plain tokens *)
}

let make ?(deadline_s = infinity) ?budget () =
  let has_budget, budget0 =
    match budget with None -> (false, 0) | Some n -> (true, n)
  in
  {
    flag = Atomic.make false;
    deadline_s;
    budget = Atomic.make budget0;
    has_budget;
  }

let create ?timeout_s () =
  match timeout_s with
  | None -> make ()
  | Some dt -> make ~deadline_s:(Mbr_obs.Clock.now_s () +. dt) ()

let after_checks n =
  if n < 1 then invalid_arg "Cancel.after_checks: n < 1";
  make ~budget:n ()

let cancel t = Atomic.set t.flag true

let cancelled t = Atomic.get t.flag

(* The deadline and budget trip the flag rather than being re-evaluated
   forever: after the first positive answer every later check is one
   atomic load, and [cancelled] agrees with [check] from then on. *)
let check t =
  Atomic.get t.flag
  ||
  if t.deadline_s < infinity && Mbr_obs.Clock.now_s () >= t.deadline_s then begin
    cancel t;
    true
  end
  else if t.has_budget && Atomic.fetch_and_add t.budget (-1) <= 1 then begin
    cancel t;
    true
  end
  else false
