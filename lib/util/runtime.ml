(* Process-level runtime tuning for the scale-oriented entry points.

   The flow's hot phases (graph construction, plan builds, candidate
   enumeration) allocate short-lived records in bursts of hundreds of
   thousands; with the stock 256k-word minor heap they pay a minor
   collection every few thousand arcs. A 4M-word (32 MB) minor heap
   cuts the skew stage ~7% at scale 8 and costs one arena per domain.

   Only ever *raises* the size: a larger OCAMLRUNPARAM s=... (or an
   embedding application's own Gc.set) wins. *)

let minor_heap_words = 4 * 1024 * 1024

let tune () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < minor_heap_words then
    Gc.set { g with Gc.minor_heap_size = minor_heap_words }
