(** Cooperative cancellation tokens for long-running solves.

    A token is a single atomic flag plus two optional auto-trip
    sources: a monotonic-clock deadline and a deterministic poll
    budget. Producers (a service request timeout, a client abort, a
    solver race losing its bet) call {!cancel}; consumers (the
    set-partition branch-and-bound, the useful-skew sweep) call
    {!check} at their natural step boundary and wind down to their
    current incumbent when it answers [true].

    Cancellation is a {e request}, not an interrupt: a cancelled solve
    still returns a usable (feasible, just unproven) result, exactly as
    if its node budget had run out — see
    [Mbr_ilp.Set_partition.solve]'s [node_limit] contract, which
    cancellation shares by construction (property-tested).

    Tokens are domain-safe: the flag is an [Atomic.t], so one token can
    be handed to every worker of a {!Pool} fan-out and a single
    {!cancel} stops them all at their next check. Once tripped — by
    {!cancel}, a passed deadline, or an exhausted budget — a token
    stays cancelled forever. *)

type t

val create : ?timeout_s:float -> unit -> t
(** A fresh token. With [timeout_s], {!check} starts answering [true]
    once that many seconds of monotonic time have elapsed since
    creation (the deadline trips the flag, so later checks are a single
    atomic load). Without it, only {!cancel} (or nothing) trips the
    token. *)

val after_checks : int -> t
(** A token that trips on its [n]-th {!check} ([n >= 1]). Deterministic
    by construction — the trip point is a function of the consumer's
    check sequence alone, not of time — which is what lets the tests
    prove cancel-at-any-point equivalent to node-limit semantics.
    Raises [Invalid_argument] when [n < 1]. *)

val cancel : t -> unit
(** Request cancellation. Idempotent. *)

val check : t -> bool
(** Poll the token from the consuming solver: [true] once the token has
    tripped. This is the only function that advances the deadline /
    budget machinery, so call it exactly once per step. Safe from any
    domain. *)

val cancelled : t -> bool
(** Passive observation: has the token tripped? Never advances the
    budget and never trips the deadline itself — use it for reporting
    (a solver deciding what status to return, a service labelling the
    response) after the polling loop has finished. *)
