(** Process-level runtime tuning for scale-oriented binaries. *)

val minor_heap_words : int
(** Minor heap size [tune] raises to (words). *)

val tune : unit -> unit
(** Raise the minor heap to {!minor_heap_words} if it is currently
    smaller. Never shrinks: an explicit [OCAMLRUNPARAM s=...] larger
    than this wins. Call once at binary startup, before the flow. *)
