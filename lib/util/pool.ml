let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* Telemetry: worker spans make the fan-out visible as one lane per
   domain in a Chrome trace; the counters price the scheduling. All
   no-ops while the obs layer is disabled. *)
let m_maps = Mbr_obs.Metrics.counter "pool.maps"

let m_chunks = Mbr_obs.Metrics.counter "pool.chunks"

let m_tasks = Mbr_obs.Metrics.counter "pool.tasks"

let map_array ?(chunk = 1) ?order ~jobs f tasks =
  if jobs < 1 then invalid_arg "Pool.map_array: jobs < 1";
  if chunk < 1 then invalid_arg "Pool.map_array: chunk < 1";
  let n = Array.length tasks in
  (match order with
  | None -> ()
  | Some o ->
    if Array.length o <> n then
      invalid_arg "Pool.map_array: order length <> number of tasks";
    let seen = Array.make n false in
    Array.iter
      (fun i ->
        if i < 0 || i >= n || seen.(i) then
          invalid_arg "Pool.map_array: order is not a permutation";
        seen.(i) <- true)
      o);
  if jobs = 1 || n <= 1 then Array.map f tasks
  else begin
    Mbr_obs.Metrics.incr m_maps;
    Mbr_obs.Metrics.incr ~by:n m_tasks;
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* the atomic index walks claim positions; [order] maps a position
       back to the task it names, so results still land in task slots *)
    let task_of = match order with None -> Fun.id | Some o -> fun p -> o.(p) in
    (* first failure wins; its presence also stops further claims *)
    let failure = Atomic.make None in
    let worker () =
      Mbr_obs.Trace.with_span ~name:"pool.worker" (fun () ->
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n || Atomic.get failure <> None then continue := false
        else begin
          Mbr_obs.Metrics.incr m_chunks;
          let stop = min n (start + chunk) in
          try
            for p = start to stop - 1 do
              let i = task_of p in
              results.(i) <- Some (f tasks.(i))
            done
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
        end
      done)
    in
    let spawned = Array.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    (* the calling domain is worker number [jobs] *)
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end
