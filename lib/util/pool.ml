let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* Telemetry: worker spans make the fan-out visible as one lane per
   domain in a Chrome trace; the counters price the scheduling. All
   no-ops while the obs layer is disabled. *)
let m_maps = Mbr_obs.Metrics.counter "pool.maps"

let m_chunks = Mbr_obs.Metrics.counter "pool.chunks"

let m_tasks = Mbr_obs.Metrics.counter "pool.tasks"

let map_array ?(chunk = 1) ?order ~jobs f tasks =
  if jobs < 1 then invalid_arg "Pool.map_array: jobs < 1";
  if chunk < 1 then invalid_arg "Pool.map_array: chunk < 1";
  let n = Array.length tasks in
  (match order with
  | None -> ()
  | Some o ->
    if Array.length o <> n then
      invalid_arg "Pool.map_array: order length <> number of tasks";
    let seen = Array.make n false in
    Array.iter
      (fun i ->
        if i < 0 || i >= n || seen.(i) then
          invalid_arg "Pool.map_array: order is not a permutation";
        seen.(i) <- true)
      o);
  if jobs = 1 || n <= 1 then Array.map f tasks
  else begin
    Mbr_obs.Metrics.incr m_maps;
    Mbr_obs.Metrics.incr ~by:n m_tasks;
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* the atomic index walks claim positions; [order] maps a position
       back to the task it names, so results still land in task slots *)
    let task_of = match order with None -> Fun.id | Some o -> fun p -> o.(p) in
    (* first failure wins; its presence also stops further claims *)
    let failure = Atomic.make None in
    let worker () =
      Mbr_obs.Trace.with_span ~name:"pool.worker" (fun () ->
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n || Atomic.get failure <> None then continue := false
        else begin
          Mbr_obs.Metrics.incr m_chunks;
          let stop = min n (start + chunk) in
          try
            for p = start to stop - 1 do
              let i = task_of p in
              results.(i) <- Some (f tasks.(i))
            done
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
        end
      done)
    in
    let spawned = Array.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    (* the calling domain is worker number [jobs] *)
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end

module Executor = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable stopping : bool;
    mutable domains : unit Domain.t array;
    n_workers : int;
  }

  let m_submitted = Mbr_obs.Metrics.counter "pool.exec.submitted"

  let m_completed = Mbr_obs.Metrics.counter "pool.exec.completed"

  let m_failed = Mbr_obs.Metrics.counter "pool.exec.failed"

  (* Workers block on the condition until a job or the stop flag shows
     up; on stop they drain what is already queued, then exit — so
     shutdown never drops accepted work. A job that raises is the
     submitter's bug: the exception is counted, reported on stderr and
     swallowed, because one bad job must not take a long-lived worker
     (and every job queued behind it) down with it. *)
  let worker t () =
    Mbr_obs.Trace.with_span ~name:"pool.exec.worker" (fun () ->
        let rec loop () =
          Mutex.lock t.mutex;
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.nonempty t.mutex
          done;
          match Queue.take_opt t.queue with
          | None -> Mutex.unlock t.mutex (* stopping, and fully drained *)
          | Some job ->
            Mutex.unlock t.mutex;
            (try
               job ();
               Mbr_obs.Metrics.incr m_completed
             with e ->
               Mbr_obs.Metrics.incr m_failed;
               Printf.eprintf "Pool.Executor: job raised %s\n%!"
                 (Printexc.to_string e));
            loop ()
        in
        loop ())

  let create ?workers () =
    let n_workers =
      match workers with
      | None -> recommended_jobs ()
      | Some w when w >= 1 -> w
      | Some _ -> invalid_arg "Pool.Executor.create: workers < 1"
    in
    let t =
      {
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        stopping = false;
        domains = [||];
        n_workers;
      }
    in
    t.domains <- Array.init n_workers (fun _ -> Domain.spawn (worker t));
    t

  let workers t = t.n_workers

  let queue_depth t =
    Mutex.lock t.mutex;
    let n = Queue.length t.queue in
    Mutex.unlock t.mutex;
    n

  let submit t job =
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.Executor.submit: executor is shut down"
    end;
    Queue.add job t.queue;
    Mbr_obs.Metrics.incr m_submitted;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

  let shutdown t =
    Mutex.lock t.mutex;
    let first = not t.stopping in
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    if first then Array.iter Domain.join t.domains
end
