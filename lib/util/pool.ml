let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* Telemetry: worker spans make the fan-out visible as one lane per
   domain in a Chrome trace; the counters price the scheduling. All
   no-ops while the obs layer is disabled. *)
let m_maps = Mbr_obs.Metrics.counter "pool.maps"

let m_chunks = Mbr_obs.Metrics.counter "pool.chunks"

let m_tasks = Mbr_obs.Metrics.counter "pool.tasks"

let map_array ?(chunk = 1) ~jobs f tasks =
  if jobs < 1 then invalid_arg "Pool.map_array: jobs < 1";
  if chunk < 1 then invalid_arg "Pool.map_array: chunk < 1";
  let n = Array.length tasks in
  if jobs = 1 || n <= 1 then Array.map f tasks
  else begin
    Mbr_obs.Metrics.incr m_maps;
    Mbr_obs.Metrics.incr ~by:n m_tasks;
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* first failure wins; its presence also stops further claims *)
    let failure = Atomic.make None in
    let worker () =
      Mbr_obs.Trace.with_span ~name:"pool.worker" (fun () ->
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n || Atomic.get failure <> None then continue := false
        else begin
          Mbr_obs.Metrics.incr m_chunks;
          let stop = min n (start + chunk) in
          try
            for i = start to stop - 1 do
              results.(i) <- Some (f tasks.(i))
            done
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
        end
      done)
    in
    let spawned = Array.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    (* the calling domain is worker number [jobs] *)
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end
