(** Fixed-size domain pool for embarrassingly parallel fan-out.

    [map_array ~jobs f tasks] applies [f] to every element of [tasks]
    and returns the results in task order. With [jobs = 1] (or at most
    one task) it is exactly [Array.map f tasks] on the calling domain —
    no domain is ever spawned, so a serial configuration pays nothing
    and behaves identically to hand-written serial code. With
    [jobs >= 2] it spawns [min (jobs - 1) (n - 1)] worker domains; the
    calling domain works too, so [jobs] is the total parallelism.

    Work distribution is an atomic index over the task array: each
    worker repeatedly claims the next chunk of [chunk] consecutive
    indices ([1] by default — right for coarse tasks like per-block ILP
    solves; raise it for many tiny tasks). Every result lands in the
    slot of its task index, so the output is deterministic and
    independent of scheduling.

    [order], when given, is a permutation of the task indices naming
    the order in which tasks are {e claimed} — longest-first
    scheduling, for instance, shortens the tail of a skewed fan-out.
    It changes only which domain runs which task when: results stay in
    task-index slots, so the returned array is byte-for-byte the same
    with or without it, and the serial ([jobs = 1]) path ignores it
    entirely (after validating it, so a bad permutation never hides
    behind a serial configuration).

    [f] must be safe to call from multiple domains at once: it may
    freely mutate state it creates itself, but anything reachable from
    the shared [tasks] (or captured by [f]'s closure) must only be
    read. All callers in this repo uphold that by construction — see
    the read-only sharing invariant in [Mbr_core.Allocate].

    If any call to [f] raises, the pool stops handing out new chunks,
    the remaining workers drain, and the first exception (in claim
    order) is re-raised on the calling domain with its original
    backtrace.

    Telemetry: when the observability layer is enabled, every worker
    stint (spawned domains and the calling domain's) is a
    [Mbr_obs.Trace] span named ["pool.worker"], so spans recorded
    inside [f] nest under the worker lane of the domain that ran them;
    the [pool.maps] / [pool.chunks] / [pool.tasks] counters record the
    fan-out. All of it is no-op when [Mbr_obs] is disabled, and the
    [jobs = 1] serial path is never instrumented at all. *)

val recommended_jobs : unit -> int
(** The runtime's parallelism estimate
    ({!Domain.recommended_domain_count}), never below 1. The [-j 0] /
    [jobs = None] auto setting of the frontends resolves to this. *)

val map_array :
  ?chunk:int -> ?order:int array -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** See above. Raises [Invalid_argument] when [jobs < 1], [chunk < 1],
    or [order] is not a permutation of the task indices. *)

(** Long-lived worker domains draining a shared job queue.

    {!map_array} spawns and joins domains per fan-out, which is right
    for one large batch but wrong for a service handling a steady
    stream of independent requests — domain spawn is milliseconds, and
    a daemon must bound its domain count regardless of load. An
    executor spawns its workers once; {!submit} then costs one
    mutex-protected queue push.

    Jobs are [unit -> unit] thunks and run in submission order
    (FIFO), picked up by whichever worker frees first. A job that
    raises is counted ([pool.exec.failed]), reported on stderr and
    swallowed — a bad job must not kill a shared worker. Anything a
    job touches must be safe to reach from the worker's domain; the
    serialized-session discipline of [Mbr_service] is the canonical
    way to uphold that.

    Telemetry: each worker's lifetime is a ["pool.exec.worker"] trace
    span (so per-job spans nest under the lane of the domain that ran
    them), and [pool.exec.submitted] / [.completed] / [.failed] count
    the traffic. *)
module Executor : sig
  type t

  val create : ?workers:int -> unit -> t
  (** Spawn the worker domains ([workers] defaults to
      {!recommended_jobs}; raises [Invalid_argument] when [< 1]).
      Remember that each worker is an OS-level domain: one executor
      per process, sized to the machine, shared by all sessions — not
      one per request source. *)

  val submit : t -> (unit -> unit) -> unit
  (** Enqueue a job. Never blocks (the queue is unbounded here;
      backpressure belongs to the caller, which knows its per-source
      limits — see [Mbr_service.Server]). Raises [Invalid_argument]
      after {!shutdown}. *)

  val shutdown : t -> unit
  (** Stop accepting jobs, drain everything already queued, and join
      the worker domains. Blocks until the drain completes; accepted
      jobs are never dropped. Idempotent — concurrent callers race to
      be the one that joins, the rest return once stopping is set. *)

  val workers : t -> int

  val queue_depth : t -> int
  (** Jobs accepted but not yet picked up by a worker — a telemetry
      gauge (one mutex-protected [Queue.length]); by the time the
      caller reads the value it may already have moved. *)
end
