(** Fixed-size domain pool for embarrassingly parallel fan-out.

    [map_array ~jobs f tasks] applies [f] to every element of [tasks]
    and returns the results in task order. With [jobs = 1] (or at most
    one task) it is exactly [Array.map f tasks] on the calling domain —
    no domain is ever spawned, so a serial configuration pays nothing
    and behaves identically to hand-written serial code. With
    [jobs >= 2] it spawns [min (jobs - 1) (n - 1)] worker domains; the
    calling domain works too, so [jobs] is the total parallelism.

    Work distribution is an atomic index over the task array: each
    worker repeatedly claims the next chunk of [chunk] consecutive
    indices ([1] by default — right for coarse tasks like per-block ILP
    solves; raise it for many tiny tasks). Every result lands in the
    slot of its task index, so the output is deterministic and
    independent of scheduling.

    [order], when given, is a permutation of the task indices naming
    the order in which tasks are {e claimed} — longest-first
    scheduling, for instance, shortens the tail of a skewed fan-out.
    It changes only which domain runs which task when: results stay in
    task-index slots, so the returned array is byte-for-byte the same
    with or without it, and the serial ([jobs = 1]) path ignores it
    entirely (after validating it, so a bad permutation never hides
    behind a serial configuration).

    [f] must be safe to call from multiple domains at once: it may
    freely mutate state it creates itself, but anything reachable from
    the shared [tasks] (or captured by [f]'s closure) must only be
    read. All callers in this repo uphold that by construction — see
    the read-only sharing invariant in [Mbr_core.Allocate].

    If any call to [f] raises, the pool stops handing out new chunks,
    the remaining workers drain, and the first exception (in claim
    order) is re-raised on the calling domain with its original
    backtrace.

    Telemetry: when the observability layer is enabled, every worker
    stint (spawned domains and the calling domain's) is a
    [Mbr_obs.Trace] span named ["pool.worker"], so spans recorded
    inside [f] nest under the worker lane of the domain that ran them;
    the [pool.maps] / [pool.chunks] / [pool.tasks] counters record the
    fan-out. All of it is no-op when [Mbr_obs] is disabled, and the
    [jobs = 1] serial path is never instrumented at all. *)

val recommended_jobs : unit -> int
(** The runtime's parallelism estimate
    ({!Domain.recommended_domain_count}), never below 1. The [-j 0] /
    [jobs = None] auto setting of the frontends resolves to this. *)

val map_array :
  ?chunk:int -> ?order:int array -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** See above. Raises [Invalid_argument] when [jobs < 1], [chunk < 1],
    or [order] is not a permutation of the task indices. *)
