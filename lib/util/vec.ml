type 'a t = { mutable data : 'a option array; mutable len : int }

let create () = { data = Array.make 8 None; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.data in
  if t.len >= cap then begin
    let data = Array.make (2 * cap) None in
    Array.blit t.data 0 data 0 cap;
    t.data <- data
  end

let push t x =
  grow t;
  t.data.(t.len) <- Some x;
  t.len <- t.len + 1;
  t.len - 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of range"

let get t i =
  check t i;
  match t.data.(i) with
  | Some x -> x
  | None -> assert false

let set t i x =
  check t i;
  t.data.(i) <- Some x

let iteri f t =
  for i = 0 to t.len - 1 do
    match t.data.(i) with Some x -> f i x | None -> assert false
  done

let iter f t = iteri (fun _ x -> f x) t

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let of_list l =
  let t = create () in
  List.iter (fun x -> ignore (push t x)) l;
  t

let map_to_array f t =
  Array.init t.len (fun i -> f (get t i))

let suffix t from =
  let from = max 0 from in
  let acc = ref [] in
  for i = t.len - 1 downto from do
    acc := get t i :: !acc
  done;
  !acc

let copy t = { data = Array.copy t.data; len = t.len }
