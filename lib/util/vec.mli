(** Growable arrays (OCaml 5.1 predates stdlib [Dynarray]); the backing
    store of the netlist/placement databases. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of range. *)

val set : 'a t -> int -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val map_to_array : ('a -> 'b) -> 'a t -> 'b array

val suffix : 'a t -> int -> 'a list
(** Elements from index [from] (inclusive) to the end, in order; the
    whole content when [from <= 0], [] when [from >= length]. *)

val copy : 'a t -> 'a t
