open Types
module Vec = Mbr_util.Vec
module Cell_lib = Mbr_liberty.Cell

type edit =
  | Cell_added of cell_id
  | Cell_removed of cell_id
  | Cell_retyped of cell_id
  | Net_changed of net_id

type t = {
  d_name : string;
  cells : cell Vec.t;
  nets : net Vec.t;
  pins : pin Vec.t;
  mutable live : int;
  edit_log : edit Vec.t;
}

let create ~name =
  {
    d_name = name;
    cells = Vec.create ();
    nets = Vec.create ();
    pins = Vec.create ();
    live = 0;
    edit_log = Vec.create ();
  }

let name t = t.d_name

let log t e = ignore (Vec.push t.edit_log e)

let revision t = Vec.length t.edit_log

let edits_since t cursor = Vec.suffix t.edit_log cursor

let cell t id = Vec.get t.cells id

let pin t id = Vec.get t.pins id

let net t id = Vec.get t.nets id

let add_net ?(is_clock = false) t n_name =
  Vec.push t.nets { n_name; n_pins = []; n_is_clock = is_clock }

let new_pin t ~cell_id ~kind ~dir ~net_id =
  let p = { p_cell = cell_id; p_kind = kind; p_dir = dir; p_net = net_id } in
  let pid = Vec.push t.pins p in
  (match net_id with
  | Some nid ->
    let n = net t nid in
    n.n_pins <- pid :: n.n_pins;
    log t (Net_changed nid)
  | None -> ());
  pid

let new_cell t ~c_name ~kind =
  let c = { c_name; c_kind = kind; c_pins = []; c_dead = false } in
  let id = Vec.push t.cells c in
  t.live <- t.live + 1;
  id

let finish_cell t id pins =
  (cell t id).c_pins <- pins;
  log t (Cell_added id)

let add_port t pname dir nid =
  let id = new_cell t ~c_name:pname ~kind:(Port dir) in
  let pdir = match dir with In_port -> Output | Out_port -> Input in
  let pid = new_pin t ~cell_id:id ~kind:Pin_port ~dir:pdir ~net_id:(Some nid) in
  finish_cell t id [ pid ];
  id

let add_clock_root t cname nid =
  let id = new_cell t ~c_name:cname ~kind:Clock_root in
  let pid = new_pin t ~cell_id:id ~kind:Pin_out ~dir:Output ~net_id:(Some nid) in
  finish_cell t id [ pid ];
  id

let add_clock_gate t cname ~enable ~ck_in ~ck_out =
  let id = new_cell t ~c_name:cname ~kind:(Clock_gate { enable }) in
  let i = new_pin t ~cell_id:id ~kind:(Pin_in 0) ~dir:Input ~net_id:(Some ck_in) in
  let o = new_pin t ~cell_id:id ~kind:Pin_out ~dir:Output ~net_id:(Some ck_out) in
  finish_cell t id [ i; o ];
  id

let add_comb t cname attrs ~inputs ~output =
  if List.length inputs <> attrs.n_inputs then
    invalid_arg "Design.add_comb: input arity mismatch";
  let id = new_cell t ~c_name:cname ~kind:(Comb attrs) in
  let ins =
    List.mapi
      (fun k nid -> new_pin t ~cell_id:id ~kind:(Pin_in k) ~dir:Input ~net_id:(Some nid))
      inputs
  in
  let o = new_pin t ~cell_id:id ~kind:Pin_out ~dir:Output ~net_id:(Some output) in
  finish_cell t id (ins @ [ o ]);
  id

type reg_conn = {
  d_nets : net_id option array;
  q_nets : net_id option array;
  clock : net_id;
  reset : net_id option;
  scan_enable : net_id option;
  scan_ins : (int * net_id) list;
  scan_outs : (int * net_id) list;
}

let simple_conn ~d ~q ~clock =
  {
    d_nets = d;
    q_nets = q;
    clock;
    reset = None;
    scan_enable = None;
    scan_ins = [];
    scan_outs = [];
  }

let add_register t rname (attrs : reg_attrs) conn =
  let bits = attrs.lib_cell.Cell_lib.bits in
  if Array.length conn.d_nets <> bits || Array.length conn.q_nets <> bits then
    invalid_arg "Design.add_register: D/Q array length must equal cell bits";
  (* Scan pins follow the library cell, not the connection spec: an
     internal-scan cell always has SI0/SO0, a per-bit-scan cell one
     SI/SO pair per bit. The spec only provides initial nets. *)
  let scan_bits =
    match attrs.lib_cell.Cell_lib.scan with
    | Cell_lib.No_scan -> []
    | Cell_lib.Internal_scan -> [ 0 ]
    | Cell_lib.Per_bit_scan -> List.init bits Fun.id
  in
  let check_scan_conn entries =
    List.iter
      (fun (i, _) ->
        if not (List.mem i scan_bits) then
          invalid_arg "Design.add_register: scan connection to a missing pin")
      entries
  in
  check_scan_conn conn.scan_ins;
  check_scan_conn conn.scan_outs;
  let id = new_cell t ~c_name:rname ~kind:(Register attrs) in
  let pins = ref [] in
  let mk kind dir net_id = pins := new_pin t ~cell_id:id ~kind ~dir ~net_id :: !pins in
  Array.iteri (fun i nid -> mk (Pin_d i) Input nid) conn.d_nets;
  Array.iteri (fun i nid -> mk (Pin_q i) Output nid) conn.q_nets;
  mk Pin_clock Input (Some conn.clock);
  (match conn.reset with Some nid -> mk Pin_reset Input (Some nid) | None -> ());
  if scan_bits <> [] then mk Pin_scan_enable Input conn.scan_enable;
  List.iter
    (fun b ->
      mk (Pin_scan_in b) Input (List.assoc_opt b conn.scan_ins);
      mk (Pin_scan_out b) Output (List.assoc_opt b conn.scan_outs))
    scan_bits;
  finish_cell t id (List.rev !pins);
  id

let n_cells t = t.live

let n_nets t = Vec.length t.nets

let n_pins t = Vec.length t.pins

let live_cells t =
  let acc = ref [] in
  Vec.iteri (fun id c -> if not c.c_dead then acc := id :: !acc) t.cells;
  List.rev !acc

let registers t =
  let acc = ref [] in
  Vec.iteri
    (fun id c ->
      match c.c_kind with
      | Register _ when not c.c_dead -> acc := id :: !acc
      | Register _ | Comb _ | Clock_root | Clock_gate _ | Port _ -> ())
    t.cells;
  List.rev !acc

let reg_attrs t id =
  let c = cell t id in
  match c.c_kind with
  | Register a when not c.c_dead -> a
  | Register _ | Comb _ | Clock_root | Clock_gate _ | Port _ ->
    invalid_arg "Design.reg_attrs: not a live register"

let find_cell t cname =
  let found = ref None in
  Vec.iteri
    (fun id c ->
      if (not c.c_dead) && c.c_name = cname && !found = None then found := Some id)
    t.cells;
  !found

let pins_of t id = (cell t id).c_pins

let pin_of t id kind =
  List.find_opt (fun pid -> (pin t pid).p_kind = kind) (pins_of t id)

let driver t nid =
  List.find_opt (fun pid -> (pin t pid).p_dir = Output) (net t nid).n_pins

let sinks t nid =
  List.filter (fun pid -> (pin t pid).p_dir = Input) (net t nid).n_pins

let pin_cap t pid =
  let p = pin t pid in
  if p.p_dir = Output then 0.0
  else begin
    let c = cell t p.p_cell in
    match (c.c_kind, p.p_kind) with
    | Register a, Pin_clock -> a.lib_cell.Cell_lib.clock_pin_cap
    | Register a, Pin_d _ -> a.lib_cell.Cell_lib.data_pin_cap
    | Register a, Pin_reset -> a.lib_cell.Cell_lib.data_pin_cap *. 0.8
    | Register a, (Pin_scan_in _ | Pin_scan_enable) ->
      a.lib_cell.Cell_lib.data_pin_cap *. 0.7
    | Register _, (Pin_q _ | Pin_scan_out _ | Pin_in _ | Pin_out | Pin_port) -> 0.0
    | Comb a, Pin_in _ -> a.input_cap
    | Comb _, _ -> 0.0
    | Clock_gate _, Pin_in 0 -> 1.0
    | Clock_gate _, _ -> 0.6
    | Port Out_port, Pin_port -> 1.5
    | Port _, _ -> 0.0
    | Clock_root, _ -> 0.0
  end

let pin_drive_res t pid =
  let p = pin t pid in
  if p.p_dir <> Output then invalid_arg "Design.pin_drive_res: input pin";
  let c = cell t p.p_cell in
  match c.c_kind with
  | Register a -> a.lib_cell.Cell_lib.drive_res
  | Comb a -> a.drive_res
  | Clock_root -> 0.1
  | Clock_gate _ -> 0.5
  | Port In_port -> 0.3
  | Port Out_port -> invalid_arg "Design.pin_drive_res: output port has no driver"

let cell_area t id =
  let c = cell t id in
  match c.c_kind with
  | Register a -> a.lib_cell.Cell_lib.area
  | Comb a -> a.area
  | Clock_gate _ -> 2.5
  | Clock_root | Port _ -> 0.0

let cell_size t id =
  let c = cell t id in
  match c.c_kind with
  | Register a -> (a.lib_cell.Cell_lib.width, a.lib_cell.Cell_lib.height)
  | Comb a -> (a.g_width, a.g_height)
  | Clock_gate _ -> (2.0, 1.2)
  | Clock_root | Port _ -> (0.0, 0.0)

let total_area t =
  List.fold_left (fun acc id -> acc +. cell_area t id) 0.0 (live_cells t)

let clock_nets t =
  let acc = ref [] in
  Vec.iteri (fun id n -> if n.n_is_clock then acc := id :: !acc) t.nets;
  List.rev !acc

let connect t pid nid =
  let p = pin t pid in
  (match p.p_net with
  | Some old ->
    let n = net t old in
    n.n_pins <- List.filter (fun q -> q <> pid) n.n_pins;
    log t (Net_changed old)
  | None -> ());
  p.p_net <- Some nid;
  let n = net t nid in
  n.n_pins <- pid :: n.n_pins;
  log t (Net_changed nid)

let disconnect t pid =
  let p = pin t pid in
  match p.p_net with
  | Some old ->
    let n = net t old in
    n.n_pins <- List.filter (fun q -> q <> pid) n.n_pins;
    p.p_net <- None;
    log t (Net_changed old)
  | None -> ()

let retype_register t id (new_cell : Cell_lib.t) =
  let c = cell t id in
  match c.c_kind with
  | Register a when not c.c_dead ->
    let old = a.lib_cell in
    if
      old.Cell_lib.func_class <> new_cell.Cell_lib.func_class
      || old.Cell_lib.bits <> new_cell.Cell_lib.bits
      || old.Cell_lib.scan <> new_cell.Cell_lib.scan
    then invalid_arg "Design.retype_register: incompatible replacement cell";
    c.c_kind <- Register { a with lib_cell = new_cell };
    log t (Cell_retyped id)
  | Register _ | Comb _ | Clock_root | Clock_gate _ | Port _ ->
    invalid_arg "Design.retype_register: not a live register"

let remove_cell t id =
  let c = cell t id in
  if not c.c_dead then begin
    List.iter (fun pid -> disconnect t pid) c.c_pins;
    c.c_dead <- true;
    t.live <- t.live - 1;
    log t (Cell_removed id)
  end

let validate t =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* net <-> pin back references and single driver *)
  Vec.iteri
    (fun nid n ->
      let drivers =
        List.filter (fun pid -> (pin t pid).p_dir = Output) n.n_pins
      in
      if List.length drivers > 1 then
        bad "net %s (#%d) has %d drivers" n.n_name nid (List.length drivers);
      List.iter
        (fun pid ->
          if (pin t pid).p_net <> Some nid then
            bad "net %s lists pin %d that does not point back" n.n_name pid)
        n.n_pins)
    t.nets;
  Vec.iteri
    (fun pid p ->
      match p.p_net with
      | Some nid ->
        if not (List.mem pid (net t nid).n_pins) then
          bad "pin %d points to net %d that does not list it" pid nid;
        if (cell t p.p_cell).c_dead then
          bad "dead cell %s has connected pin %d" (cell t p.p_cell).c_name pid
      | None -> ())
    t.pins;
  (* register pin sets match their library cell *)
  Vec.iteri
    (fun _ c ->
      match c.c_kind with
      | Register a when not c.c_dead ->
        let bits = a.lib_cell.Cell_lib.bits in
        let count f = List.length (List.filter f c.c_pins) in
        let nd = count (fun pid -> match (pin t pid).p_kind with Pin_d _ -> true | _ -> false) in
        let nq = count (fun pid -> match (pin t pid).p_kind with Pin_q _ -> true | _ -> false) in
        if nd <> bits || nq <> bits then
          bad "register %s has %d D / %d Q pins for a %d-bit cell" c.c_name nd nq bits
      | Register _ | Comb _ | Clock_root | Clock_gate _ | Port _ -> ())
    t.cells;
  List.rev !problems
