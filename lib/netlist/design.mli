(** The design database: cells, nets and pins with construction, query
    and edit primitives. MBR composition edits the database in place
    (registers are tombstoned, MBRs added), so cell/net/pin ids are
    stable for the lifetime of a design. *)

type t

val create : name:string -> t

val name : t -> string

(** {1 Edit notifications}

    Every mutation appends to an append-only edit log so that derived
    structures (the STA engine's timing graph, the placement's net
    bounding-box cache) can update incrementally instead of rebuilding.
    Consumers remember the {!revision} they last saw and drain
    {!edits_since} from it; the log is never truncated for the lifetime
    of the design. *)

type edit =
  | Cell_added of Types.cell_id
      (** A cell finished construction (its pins exist and are wired). *)
  | Cell_removed of Types.cell_id  (** A cell was tombstoned. *)
  | Cell_retyped of Types.cell_id
      (** A register swapped library cells: pin caps, drive and setup
          changed; connectivity did not. *)
  | Net_changed of Types.net_id  (** A net's pin membership changed. *)

val revision : t -> int
(** Monotonically increasing edit count (the log length). *)

val edits_since : t -> int -> edit list
(** Edits appended at or after the given revision, oldest first. *)

(** {1 Construction} *)

val add_net : ?is_clock:bool -> t -> string -> Types.net_id

val add_port :
  t -> string -> Types.port_dir -> Types.net_id -> Types.cell_id
(** Primary IO as a pseudo cell with one pin on the net: an [In_port]
    drives it, an [Out_port] loads it. *)

val add_clock_root : t -> string -> Types.net_id -> Types.cell_id

val add_clock_gate :
  t ->
  string ->
  enable:string ->
  ck_in:Types.net_id ->
  ck_out:Types.net_id ->
  Types.cell_id

val add_comb :
  t ->
  string ->
  Types.comb_attrs ->
  inputs:Types.net_id list ->
  output:Types.net_id ->
  Types.cell_id
(** Raises [Invalid_argument] if the input count differs from
    [n_inputs]. *)

(** Connection spec for a register; array lengths must equal the library
    cell's bit count. [None] entries are tied-off/unconnected (incomplete
    MBR bits). Scan pins are created from the library cell's scan style
    (internal scan: SI0/SO0; per-bit scan: one pair per bit) whether or
    not the spec connects them — [scan_ins]/[scan_outs] entries naming a
    pin the cell does not have are rejected. *)
type reg_conn = {
  d_nets : Types.net_id option array;
  q_nets : Types.net_id option array;
  clock : Types.net_id;
  reset : Types.net_id option;
  scan_enable : Types.net_id option;
  scan_ins : (int * Types.net_id) list;
  scan_outs : (int * Types.net_id) list;
}

val simple_conn :
  d:Types.net_id option array ->
  q:Types.net_id option array ->
  clock:Types.net_id ->
  reg_conn
(** [reg_conn] with no reset/scan connections. *)

val add_register : t -> string -> Types.reg_attrs -> reg_conn -> Types.cell_id

(** {1 Queries} *)

val cell : t -> Types.cell_id -> Types.cell

val pin : t -> Types.pin_id -> Types.pin

val net : t -> Types.net_id -> Types.net

val n_cells : t -> int
(** Live cells only. *)

val n_nets : t -> int

val n_pins : t -> int

val live_cells : t -> Types.cell_id list

val registers : t -> Types.cell_id list
(** Live register cells, ascending id. *)

val reg_attrs : t -> Types.cell_id -> Types.reg_attrs
(** Raises [Invalid_argument] when the cell is not a live register. *)

val find_cell : t -> string -> Types.cell_id option
(** Linear scan by name (live cells only) — for tests and examples. *)

val pin_of : t -> Types.cell_id -> Types.pin_kind -> Types.pin_id option

val pins_of : t -> Types.cell_id -> Types.pin_id list

val driver : t -> Types.net_id -> Types.pin_id option
(** The unique output pin on the net, if any. *)

val sinks : t -> Types.net_id -> Types.pin_id list

val pin_cap : t -> Types.pin_id -> float
(** Input capacitance presented by the pin (0 for outputs). *)

val pin_drive_res : t -> Types.pin_id -> float
(** Drive resistance of an output pin; raises [Invalid_argument] on an
    input pin. *)

val cell_area : t -> Types.cell_id -> float

val cell_size : t -> Types.cell_id -> float * float
(** (width, height) of the cell footprint. *)

val total_area : t -> float
(** Sum over live cells. *)

val clock_nets : t -> Types.net_id list

(** {1 Edits} *)

val connect : t -> Types.pin_id -> Types.net_id -> unit
(** Reconnects (disconnecting from any previous net first). *)

val disconnect : t -> Types.pin_id -> unit

val remove_cell : t -> Types.cell_id -> unit
(** Disconnects all pins and tombstones the cell. Idempotent. *)

val retype_register : t -> Types.cell_id -> Mbr_liberty.Cell.t -> unit
(** Swap a live register's library cell for another of the same
    functional class, bit width and scan style (MBR sizing, §4.1 /
    Fig. 4). Connectivity is untouched. Raises [Invalid_argument] when
    the replacement is not pin-compatible. *)

val validate : t -> string list
(** Structural invariant violations (empty = healthy): multiple drivers
    on a net, pins whose net does not list them back, live registers
    with pin sets inconsistent with their library cell, dead cells with
    connected pins. *)
