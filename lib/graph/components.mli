(** Connected components of an undirected graph. *)

val components : Ugraph.t -> int list list
(** Each component as an ascending node list; components ordered by
    their smallest node. *)

val component_of : Ugraph.t -> int array
(** [.(v)] = component index of node [v] (indices follow the order of
    {!components}). *)

val components_csr : Csr.t -> int list list
(** {!components} over a CSR adjacency; same ordering contract. *)

val component_of_csr : Csr.t -> int array
