(* Shared DFS over an abstract neighbour iterator so the Ugraph and Csr
   entry points stay one implementation. *)
let component_of_adj ~n ~iter =
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let id = !next in
      incr next;
      let stack = ref [ v ] in
      comp.(v) <- id;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
          stack := rest;
          iter u (fun w ->
              if comp.(w) < 0 then begin
                comp.(w) <- id;
                stack := w :: !stack
              end)
      done
    end
  done;
  comp

let group comp =
  let n = Array.length comp in
  let k = Array.fold_left (fun acc c -> max acc (c + 1)) 0 comp in
  let buckets = Array.make k [] in
  for v = n - 1 downto 0 do
    buckets.(comp.(v)) <- v :: buckets.(comp.(v))
  done;
  Array.to_list buckets

let component_of g =
  component_of_adj ~n:(Ugraph.n_nodes g)
    ~iter:(fun u f -> List.iter f (Ugraph.neighbors g u))

let components g = group (component_of g)

let component_of_csr g =
  component_of_adj ~n:(Csr.n_nodes g) ~iter:(Csr.iter_neighbors g)

let components_csr g = group (component_of_csr g)
