(* Packed-edge representation: each directed arc (i -> j) is a single
   int (i lsl 31) lor j, so the whole edge list sorts row-major with one
   int-array sort and the CSR slices fall out of a linear scan. The
   31-bit shift caps nodes at 2^31 - 1 on 64-bit (checked in create). *)

let max_nodes = 1 lsl 31

let pack i j = (i lsl 31) lor j

let unpack_col p = p land (max_nodes - 1)

type t = { n : int; row_ptr : int array; cols : int array }

let n_nodes t = t.n

let n_edges t = t.row_ptr.(t.n) / 2

let check t i = if i < 0 || i >= t.n then invalid_arg "Csr: node out of range"

let degree t i =
  check t i;
  t.row_ptr.(i + 1) - t.row_ptr.(i)

let has_edge t a b =
  check t a;
  check t b;
  if a = b then false
  else begin
    (* search the smaller row *)
    let a, b =
      if t.row_ptr.(a + 1) - t.row_ptr.(a) <= t.row_ptr.(b + 1) - t.row_ptr.(b)
      then (a, b)
      else (b, a)
    in
    let lo = ref t.row_ptr.(a) and hi = ref t.row_ptr.(a + 1) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let c = t.cols.(mid) in
      if c = b then found := true
      else if c < b then lo := mid + 1
      else hi := mid
    done;
    !found
  end

let iter_neighbors t i f =
  check t i;
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.cols.(k)
  done

let fold_neighbors t i f init =
  check t i;
  let acc = ref init in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    acc := f !acc t.cols.(k)
  done;
  !acc

let neighbors t i =
  check t i;
  let acc = ref [] in
  for k = t.row_ptr.(i + 1) - 1 downto t.row_ptr.(i) do
    acc := t.cols.(k) :: !acc
  done;
  !acc

let row t i =
  check t i;
  Array.sub t.cols t.row_ptr.(i) (t.row_ptr.(i + 1) - t.row_ptr.(i))

let edges t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    for k = t.row_ptr.(i + 1) - 1 downto t.row_ptr.(i) do
      let j = t.cols.(k) in
      if i < j then acc := (i, j) :: !acc
    done
  done;
  !acc

let is_clique t nodes =
  let rec go = function
    | [] | [ _ ] -> true
    | v :: rest -> List.for_all (fun w -> has_edge t v w) rest && go rest
  in
  go nodes

module Builder = struct
  type b = { bn : int; mutable arcs : int array; mutable len : int }

  let create n =
    if n < 0 || n >= max_nodes then invalid_arg "Csr.Builder.create";
    { bn = n; arcs = Array.make 64 0; len = 0 }

  let push b p =
    if b.len >= Array.length b.arcs then begin
      let arcs = Array.make (2 * Array.length b.arcs) 0 in
      Array.blit b.arcs 0 arcs 0 b.len;
      b.arcs <- arcs
    end;
    b.arcs.(b.len) <- p;
    b.len <- b.len + 1

  let add_edge b i j =
    if i < 0 || i >= b.bn || j < 0 || j >= b.bn then
      invalid_arg "Csr.Builder.add_edge: node out of range";
    if i = j then invalid_arg "Csr.Builder.add_edge: self-loop";
    push b (pack i j);
    push b (pack j i)

  let finish b =
    let arcs = Array.sub b.arcs 0 b.len in
    Array.sort Int.compare arcs;
    (* dedup in place: duplicate undirected inserts collapse here *)
    let k = ref 0 in
    Array.iteri
      (fun idx p ->
        if idx = 0 || arcs.(!k - 1) <> p then begin
          arcs.(!k) <- p;
          incr k
        end)
      arcs;
    let m2 = !k in
    let row_ptr = Array.make (b.bn + 1) 0 in
    for idx = 0 to m2 - 1 do
      let i = arcs.(idx) lsr 31 in
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1
    done;
    for i = 0 to b.bn - 1 do
      row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
    done;
    let cols = Array.make m2 0 in
    for idx = 0 to m2 - 1 do
      cols.(idx) <- unpack_col arcs.(idx)
    done;
    { n = b.bn; row_ptr; cols }
end

let of_ugraph g =
  let n = Ugraph.n_nodes g in
  let b = Builder.create n in
  for i = 0 to n - 1 do
    List.iter (fun j -> if i < j then Builder.add_edge b i j) (Ugraph.neighbors g i)
  done;
  Builder.finish b

let to_ugraph t =
  let g = Ugraph.create t.n in
  for i = 0 to t.n - 1 do
    iter_neighbors t i (fun j -> if i < j then Ugraph.add_edge g i j)
  done;
  g

let induced_ugraph t nodes =
  let k = Array.length nodes in
  let index = Hashtbl.create k in
  Array.iteri
    (fun i v ->
      check t v;
      if Hashtbl.mem index v then invalid_arg "Csr.induced_ugraph: duplicate node";
      Hashtbl.add index v i)
    nodes;
  let sub = Ugraph.create k in
  Array.iteri
    (fun i v ->
      iter_neighbors t v (fun w ->
          match Hashtbl.find_opt index w with
          | Some j when i < j -> Ugraph.add_edge sub i j
          | Some _ | None -> ()))
    nodes;
  sub

let rewrite t row_of =
  let n = t.n in
  let rows = Array.init n row_of in
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let sz =
      match rows.(i) with
      | `Keep -> t.row_ptr.(i + 1) - t.row_ptr.(i)
      | `Replace a -> Array.length a
    in
    row_ptr.(i + 1) <- row_ptr.(i) + sz
  done;
  let cols = Array.make row_ptr.(n) 0 in
  for i = 0 to n - 1 do
    match rows.(i) with
    | `Keep ->
      Array.blit t.cols t.row_ptr.(i) cols row_ptr.(i)
        (t.row_ptr.(i + 1) - t.row_ptr.(i))
    | `Replace a ->
      Array.iteri
        (fun k j ->
          if j < 0 || j >= n || j = i then
            invalid_arg "Csr.rewrite: bad replacement column";
          if k > 0 && a.(k - 1) >= j then
            invalid_arg "Csr.rewrite: replacement row not sorted";
          cols.(row_ptr.(i) + k) <- j)
        a
  done;
  { n; row_ptr; cols }
