(** Geometric K-partitioning of compatibility-graph components (§3 of
    the paper): components larger than the node bound are recursively
    bisected along the longer spatial dimension at the median of the
    registers' clock-pin positions, keeping spatially close registers —
    those whose merge saves the most clock-tree wire — in the same
    block. The paper uses a bound of 30 nodes (smaller bounds lose QoR,
    larger ones only add runtime; see the ablation bench). *)

val partition :
  ?bound:int -> Ugraph.t -> position:(int -> Mbr_geom.Point.t) -> int list list
(** [partition ~bound g ~position] returns node blocks such that every
    block has at most [bound] (default 30) nodes, blocks respect
    connected components (never straddle two), and every node appears in
    exactly one block. Within a block nodes are ascending. Raises
    [Invalid_argument] when [bound < 1]. *)

val partition_csr :
  ?bound:int -> Csr.t -> position:(int -> Mbr_geom.Point.t) -> int list list
(** {!partition} over a CSR adjacency; identical output contract. *)

val split_by_median :
  position:(int -> Mbr_geom.Point.t) -> int list -> int list * int list
(** One bisection step, exposed for tests: splits the node list in two
    halves (sizes differing by at most one) along the dimension with the
    larger spread of positions. *)
