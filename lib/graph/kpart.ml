module Point = Mbr_geom.Point

let split_by_median ~position nodes =
  let pts = List.map (fun v -> (v, position v)) nodes in
  let xs = List.map (fun (_, (p : Point.t)) -> p.x) pts in
  let ys = List.map (fun (_, (p : Point.t)) -> p.y) pts in
  let spread vals =
    match vals with
    | [] -> 0.0
    | v :: rest ->
      let lo = List.fold_left Float.min v rest in
      let hi = List.fold_left Float.max v rest in
      hi -. lo
  in
  let use_x = spread xs >= spread ys in
  let key (_, (p : Point.t)) = if use_x then (p.x, p.y) else (p.y, p.x) in
  let sorted = List.stable_sort (fun a b -> compare (key a) (key b)) pts in
  let n = List.length sorted in
  let half = (n + 1) / 2 in
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | v :: rest -> take (k - 1) (v :: acc) rest
  in
  let left, right = take half [] sorted in
  (List.map fst left, List.map fst right)

let partition_comps ~bound ~position comps =
  if bound < 1 then invalid_arg "Kpart.partition: bound < 1";
  let rec bisect nodes =
    if List.length nodes <= bound then [ nodes ]
    else begin
      let left, right = split_by_median ~position nodes in
      (* Median split always makes progress for n >= 2. *)
      bisect left @ bisect right
    end
  in
  List.concat_map
    (fun comp -> List.map (List.sort compare) (bisect comp))
    comps

let partition ?(bound = 30) g ~position =
  partition_comps ~bound ~position (Components.components g)

let partition_csr ?(bound = 30) g ~position =
  partition_comps ~bound ~position (Components.components_csr g)
