(** Int-packed compressed-sparse-row adjacency for undirected graphs.

    The register compatibility graph at 100×-paper scale (~150k nodes,
    millions of edges) is too hot for {!Ugraph}'s per-node [Int_set.t]
    trees: every neighbour visit chases boxed pointers and every
    membership test allocates a search path. A CSR graph stores the
    whole adjacency in two flat [int array]s — [row_ptr] of length
    n+1 and a column array holding each node's neighbours as a sorted
    slice — so neighbour iteration is a cache-linear scan and
    membership is a binary search over unboxed ints.

    Values are immutable once built. Construction goes through
    {!Builder} (packed edge list, sorted and deduplicated once at
    {!Builder.finish}) or {!rewrite}, which re-packs an existing graph
    copying unchanged row slices with [Array.blit] — the primitive
    behind [Compat.refresh]'s dirty-row rewriting. *)

type t

val n_nodes : t -> int

val n_edges : t -> int
(** Undirected edge count (each edge stored twice internally). *)

val degree : t -> int -> int

val has_edge : t -> int -> int -> bool
(** Binary search in the smaller endpoint's row slice. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Ascending order; no allocation. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val neighbors : t -> int -> int list
(** Ascending order (allocates; prefer {!iter_neighbors} in hot code). *)

val row : t -> int -> int array
(** Copy of node [i]'s neighbour slice, ascending. *)

val edges : t -> (int * int) list
(** Each undirected edge once, as (lo, hi), lexicographically sorted. *)

val is_clique : t -> int list -> bool
(** All pairs adjacent (singletons and empty are cliques). *)

val of_ugraph : Ugraph.t -> t

val to_ugraph : t -> Ugraph.t

val induced_ugraph : t -> int array -> Ugraph.t
(** [induced_ugraph g nodes]: subgraph on [nodes] as a {!Ugraph} (node
    [i] of the result is [nodes.(i)]) — the bridge to the set-based
    algorithms (Bron–Kerbosch) that stay on {!Ugraph} because they run
    on tiny per-block subgraphs. Duplicates are rejected. *)

val rewrite : t -> (int -> [ `Keep | `Replace of int array ]) -> t
(** [rewrite g row_of]: a new graph where node [i]'s row is the old
    slice when [row_of i] is [`Keep], else the given array (which must
    be sorted ascending, duplicate- and self-loop-free). Kept and
    replaced slices are packed with [Array.blit]; no per-edge work is
    done for kept rows. The caller is responsible for symmetry — a
    replaced row naming [j] must be matched by [j]'s row naming [i]. *)

module Builder : sig
  type b

  val create : int -> b
  (** [create n]: builder for a graph on n nodes, no edges yet. *)

  val add_edge : b -> int -> int -> unit
  (** Records an undirected edge; duplicates are fine (deduplicated at
      {!finish}), self-loops are rejected with [Invalid_argument]. *)

  val finish : b -> t
  (** Sorts the packed edge list, deduplicates, and freezes the CSR
      arrays. The builder must not be reused afterwards. *)
end
