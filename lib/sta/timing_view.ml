type t = { eng : Engine.t }

let of_engine eng = { eng }

let engine v = v.eng

let refresh v = Engine.refresh v.eng

let slack v pid = Engine.slack v.eng pid

let arrival v pid = Engine.arrival v.eng pid

let required v pid = Engine.required v.eng pid

let reg_d_slack v cid = Engine.reg_d_slack v.eng cid

let reg_q_slack v cid = Engine.reg_q_slack v.eng cid

let wns v = Engine.wns v.eng

let tns v = Engine.tns v.eng

let wns_tns v = Engine.wns_tns v.eng

let failing_endpoints v = Engine.failing_endpoints v.eng

let n_endpoints v = Engine.n_endpoints v.eng

let corners v = Engine.corners v.eng

let per_corner v = Engine.per_corner_wns_tns v.eng
