(** Graph-based static timing analysis over a placed design.

    Model (the paper's linear approximation, §4.1): cell delay =
    intrinsic + drive resistance × load capacitance; wire delay to a
    sink at Manhattan distance L is r·L·(c·L/2 + C_sink) (Elmore on a
    lumped stick); net load is the sum of sink pin caps plus HPWL wire
    cap. Clocks are ideal with an optional per-register useful-skew
    offset; scan pins carry no timing. Endpoints are register D pins
    (setup checks against the capturing register's skewed clock) and
    output ports.

    The engine is incremental: it remembers the design revision and
    placement revision it has absorbed and {!refresh} drains the edit
    logs from there, splicing only the touched arcs into the graph,
    repairing the topological order locally and re-propagating
    arrivals/requireds with a dirty-pin worklist that stops where values
    converge. {!analyze} remains the full-propagation fallback and is
    what {!refresh} degrades to (via an internal rebuild) when an edit
    batch is structural in a way local repair cannot express or touches
    more of the graph than recomputing it would cost.

    The engine is corner-indexed: it carries a set of {!Corner.t}
    derate factors and maintains one flat [Bigarray] float64
    arrival/required plane per corner over the single shared graph —
    every propagation (full analyze, refresh worklists, levelized skew
    passes) walks each arc once and relaxes all corners against its
    per-corner memoized delays, reading and writing unboxed doubles. Plain accessors
    ({!slack}, {!wns_tns}, {!reg_d_slack}, ...) report worst-corner
    values (worst slack = min over per-corner slacks); use
    {!corner_slack} / {!per_corner_wns_tns} to see individual corners,
    or {!Timing_view} from consumer code. A single-[Corner.typical]
    engine (the default) is bit-identical to the historical
    single-corner engine: unit derates multiply by exactly 1.0. *)

type config = {
  clock_period : float;  (** ps *)
  wire_res : float;  (** kΩ per µm *)
  wire_cap : float;  (** fF per µm *)
  input_delay : float;  (** arrival of primary inputs, ps *)
  output_delay : float;  (** margin required at primary outputs, ps *)
}

val default_config : config

type t

exception Combinational_cycle of Mbr_netlist.Types.pin_id list
(** Raised by {!build} (and by the internal rebuild a {!refresh} may
    fall back to) when the data graph is cyclic. The payload is a
    witness pin path in data-flow order, closed by repeating the entry
    pin: [[p0; p1; ...; p0]]. Render it with {!cycle_to_string}; a
    [Printexc] printer is registered for raw backtraces. *)

val cycle_to_string :
  Mbr_netlist.Design.t -> Mbr_netlist.Types.pin_id list -> string
(** Formats a {!Combinational_cycle} witness as
    ["cell/PIN -> cell/PIN -> ..."] using the design's cell names. *)

val build : ?config:config -> ?corners:Corner.t array -> Mbr_place.Placement.t -> t
(** Constructs the timing graph. [corners] defaults to
    [Corner.default] (the single typical corner); the array is copied.
    Raises {!Combinational_cycle} on a combinational cycle and
    [Invalid_argument] on an empty corner set. *)

val config : t -> config

val placement : t -> Mbr_place.Placement.t

val corners : t -> Corner.t array
(** The active corner set. Do not mutate the returned array. *)

val n_corners : t -> int

val set_corners : t -> Corner.t array -> unit
(** Swap the active corner set (copied). Per-corner state is
    reallocated and the next timing query triggers a full re-analysis;
    the graph, skews and edit-log cursors are untouched. Raises
    [Invalid_argument] on an empty set. *)

val set_skew : t -> Mbr_netlist.Types.cell_id -> float -> unit
(** Useful-skew offset of a register's clock arrival (ps; positive =
    later). Takes effect at the next {!analyze}. *)

val skew : t -> Mbr_netlist.Types.cell_id -> float

val skew_assignments : t -> (Mbr_netlist.Types.cell_id * float) list
(** All registers currently carrying a nonzero useful-skew offset,
    sorted by cell id. An ECO session uses this to zero the engine back
    to the neutral clock tree before re-running skew optimization, so a
    [recompose] sees exactly what a from-scratch run would. *)

val analyze : t -> unit
(** Full arrival/required propagation over the current graph structure.
    Absorbs pending placement moves (every delay is recomputed) but not
    structural design edits — use {!refresh} after netlist surgery. *)

val refresh : ?rebuild_threshold:float -> t -> unit
(** Bring the analysis up to date with everything logged on the design
    and placement since the engine last looked: cells added/removed/
    retyped, nets rewired, cells moved. Affected net arcs are
    unspliced/respliced in place, new register/port pins are slotted
    into the topological order as pure sources/sinks, and arrivals/
    requireds are re-propagated from the dirty pins only, stopping as
    soon as values stop changing. Produces bit-identical results to a
    fresh {!build} + {!analyze} (property-tested).

    Falls back to a full rebuild — counted by {!full_builds} — when a
    combinational cell was added or removed, when a new arc contradicts
    the existing topological order, or when the touched-pin estimate
    exceeds [rebuild_threshold] (default 0.25) of the graph's pins —
    the incremental splice costs ~10x more per touched pin than the
    batched full build, so bulk edit batches (e.g. a whole composition
    pass) are cheaper to rebuild while localized ECOs stay on the
    incremental path.

    Telemetry (no-op unless [Mbr_obs] is enabled): each non-trivial
    call runs under an ["sta.refresh"] trace span; the registry
    counters [sta.refreshes], [sta.rebuild_fallbacks] and
    [sta.dirty_pins] record how often the incremental path held and
    how many pins seeded each re-propagation. *)

val full_builds : t -> int
(** Full graph constructions so far: 1 for {!build} plus one per
    internal rebuild a {!refresh} fell back to. *)

val refreshes : t -> int
(** Refreshes that took the incremental path. *)

val update_skews :
  ?jobs:int ->
  ?cancel:Mbr_util.Cancel.t ->
  t ->
  (Mbr_netlist.Types.cell_id * float) list ->
  unit
(** Incremental re-timing after changing only clock skews: applies the
    assignments, collects the union forward frontier of the changed
    registers' Q pins and the union backward frontier of their D pins
    once (epoch-stamped marks — no per-register cone chasing), and runs
    one topo-level-ordered batched pass per direction over flat
    per-corner planes, reusing cached arc delays (placement and netlist
    must be unchanged since the last {!analyze}). Orders of magnitude
    cheaper than a full pass when few registers move; produces
    bit-identical slacks to the convergence-driven worklist and to
    {!analyze} (property-tested). Falls back to a full analysis when
    the engine has never been analyzed.

    With [jobs > 1] on a multi-corner engine the corners propagate in
    parallel on [Mbr_util.Pool] (capped at one task per corner):
    per-corner fixpoints are independent, so the result is bit-identical
    to the serial pass (property-tested) and multi-corner cost
    approaches max-over-corners instead of sum.

    [cancel] is polled once per processed level so a deadline or check
    budget trips promptly, but a batch is atomic — the pass always
    completes, leaving exactly the planes an uncancelled call would.
    Callers act on the tripped token at their own step boundary
    (see {!Skew.optimize}).

    Telemetry: [sta.skew.frontier_pins] accumulates processed frontier
    pins, [sta.skew.level_passes] the non-empty levels swept, and
    [sta.skew.corner_par] the corners fanned out in parallel. *)

val update_skews_touched :
  ?jobs:int ->
  ?cancel:Mbr_util.Cancel.t ->
  t ->
  (Mbr_netlist.Types.cell_id * float) list ->
  Mbr_netlist.Types.cell_id list
(** {!update_skews} that also reports the registers owning a D or Q pin
    whose arrival or required actually changed, sorted by cell id — a
    superset of every register whose {!reg_d_slack} or {!reg_q_slack}
    differs from before the call (a D slack only moves with the D pin's
    arrival or required; likewise Q). Any register outside the returned
    set is guaranteed unchanged, which is what lets the worklist-driven
    skew optimizer skip it. On the never-analyzed fallback every
    register is reported. *)

val register_index :
  t -> Mbr_netlist.Types.cell_id array * int array
(** The design's registers, packed: [(regs, slot)] where [regs] lists
    every register in [Design.registers] order and [slot] maps a cell
    id to its index in [regs] (-1 for non-registers). Cached per design
    revision, so repeated calls (one per skew sweep, say) cost a
    revision check. Callers must not mutate either array. *)

val arrival : t -> Mbr_netlist.Types.pin_id -> float option
(** Worst-corner (latest) arrival; [None] for pins outside the data
    graph or unreached. *)

val required : t -> Mbr_netlist.Types.pin_id -> float option
(** Worst-corner (earliest) required time. *)

val slack : t -> Mbr_netlist.Types.pin_id -> float option
(** Worst-corner slack: the min over corners of that corner's
    [required - arrival] (not the naive pairing of worst arrival with
    worst required). *)

val corner_slack : t -> int -> Mbr_netlist.Types.pin_id -> float option
(** Slack under one corner, by index into {!corners}. Raises
    [Invalid_argument] on an out-of-range corner index. *)

val wns : t -> float
(** Worst-corner worst endpoint slack (+inf when there are no
    endpoints). *)

val tns : t -> float
(** Total negative worst-corner slack (sum of negative endpoint
    slacks, <= 0). *)

val wns_tns : t -> float * float
(** [(wns, tns)] from a single endpoint sweep. *)

val corner_wns_tns : t -> int -> float * float
(** [(wns, tns)] under one corner, by index into {!corners}. *)

val per_corner_wns_tns : t -> (string * float * float) list
(** [(corner name, wns, tns)] for every active corner, in corner-set
    order. *)

val failing_endpoints : t -> int

val n_endpoints : t -> int

val endpoint_slacks : t -> (Mbr_netlist.Types.pin_id * float) list

val reg_d_slack : t -> Mbr_netlist.Types.cell_id -> float
(** Worst slack over the register's connected D pins (+inf when all are
    unconnected). Raises [Invalid_argument] for non-registers. *)

val output_load : t -> Mbr_netlist.Types.pin_id -> float
(** Capacitive load seen by an output pin (sink pins + wire), fF; 0
    when unconnected. Used by MBR sizing to bound delay changes. *)

val reg_q_slack : t -> Mbr_netlist.Types.cell_id -> float
(** Worst slack over the register's connected Q pins — the backward-
    propagated required minus arrival, i.e. the tightest downstream
    endpoint seen from this register. *)
