(** The worst-corner slack view every flow consumer reads timing
    through.

    The corner-indexed {!Engine} exposes both per-corner and
    worst-corner accessors; this module is the deliberately narrow
    subset the composition pipeline ({!Mbr_core}: Compat, Allocate,
    Skew, Resize, Metrics, Flow recovery) is written against — all
    single-valued, all worst-corner, so no caller ever indexes a corner
    by hand. With the default single-typical corner set it degenerates
    to exactly the historical single-corner readings. *)

type t

val of_engine : Engine.t -> t
(** A view is a free wrapper: no copy, no analysis. Readings always
    reflect the engine's current corner set and analysis state. *)

val engine : t -> Engine.t

val refresh : t -> unit
(** {!Engine.refresh} with default threshold. *)

val slack : t -> Mbr_netlist.Types.pin_id -> float option
(** Worst-corner pin slack. *)

val arrival : t -> Mbr_netlist.Types.pin_id -> float option
val required : t -> Mbr_netlist.Types.pin_id -> float option

val reg_d_slack : t -> Mbr_netlist.Types.cell_id -> float
(** Worst-corner worst slack over the register's connected D pins. *)

val reg_q_slack : t -> Mbr_netlist.Types.cell_id -> float

val wns : t -> float
val tns : t -> float
val wns_tns : t -> float * float
val failing_endpoints : t -> int
val n_endpoints : t -> int

val corners : t -> Corner.t array
(** The active corner set (for reporting; do not mutate). *)

val per_corner : t -> (string * float * float) list
(** [(corner name, wns, tns)] per active corner — the one
    deliberately corner-shaped reading, for QoR reports. *)
