module Design = Mbr_netlist.Design
module Placement = Mbr_place.Placement

type config = { bound : float; iterations : int; damping : float }

let default_config = { bound = 120.0; iterations = 8; damping = 0.6 }

type report = {
  wns_before : float;
  wns_after : float;
  tns_before : float;
  tns_after : float;
  max_abs_skew : float;
  sweeps_run : int;
}

(* One register's skew step given its current worst D/Q slacks: balance
   the two sides when either violates; one-sided registers are pushed
   whole-hog in the helpful direction. *)
let step cfg s_d s_q =
  if Float.is_finite s_d && Float.is_finite s_q then begin
    if Float.min s_d s_q < 0.0 then (s_q -. s_d) /. 2.0 *. cfg.damping else 0.0
  end
  else if Float.is_finite s_d && s_d < 0.0 then -.s_d *. cfg.damping
  else if Float.is_finite s_q && s_q < 0.0 then s_q *. cfg.damping
  else 0.0

let optimize ?(config = default_config) eng =
  let dsg = Placement.design (Engine.placement eng) in
  let regs = Design.registers dsg in
  Engine.refresh eng;
  let wns_before = Engine.wns eng in
  let tns_before = Engine.tns eng in
  let clamp v = Float.max (-.config.bound) (Float.min config.bound v) in
  let snapshot () = List.map (fun r -> (r, Engine.skew eng r)) regs in
  let restore snap = Engine.update_skews eng snap in
  let best_tns = ref tns_before in
  let best_wns = ref wns_before in
  let best = ref (snapshot ()) in
  let sweeps = ref 0 in
  (try
     for _ = 1 to config.iterations do
       incr sweeps;
       (* Jacobi sweep: read every slack under the current assignment,
          then apply all moves at once; Engine.update_skews patches only
          the affected timing cones. *)
       let moves =
         List.filter_map
           (fun r ->
             let delta =
               step config (Engine.reg_d_slack eng r) (Engine.reg_q_slack eng r)
             in
             let next = clamp (Engine.skew eng r +. delta) in
             if Float.abs (next -. Engine.skew eng r) > 0.5 then Some (r, next)
             else None)
           regs
       in
       if moves = [] then raise Exit;
       Engine.update_skews eng moves;
       let tns = Engine.tns eng and wns = Engine.wns eng in
       if (tns, wns) > (!best_tns, !best_wns) then begin
         best_tns := tns;
         best_wns := wns;
         best := snapshot ()
       end
     done
   with Exit -> ());
  restore !best;
  let max_abs_skew =
    List.fold_left (fun acc r -> Float.max acc (Float.abs (Engine.skew eng r))) 0.0 regs
  in
  {
    wns_before;
    wns_after = Engine.wns eng;
    tns_before;
    tns_after = Engine.tns eng;
    max_abs_skew;
    sweeps_run = !sweeps;
  }
