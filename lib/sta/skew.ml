module Design = Mbr_netlist.Design
module Placement = Mbr_place.Placement

type config = { bound : float; iterations : int; damping : float }

let default_config = { bound = 120.0; iterations = 8; damping = 0.6 }

type report = {
  wns_before : float;
  wns_after : float;
  tns_before : float;
  tns_after : float;
  max_abs_skew : float;
  sweeps_run : int;
}

(* One register's skew step given its current worst D/Q slacks: balance
   the two sides when either violates; one-sided registers are pushed
   whole-hog in the helpful direction. *)
let step cfg s_d s_q =
  if Float.is_finite s_d && Float.is_finite s_q then begin
    if Float.min s_d s_q < 0.0 then (s_q -. s_d) /. 2.0 *. cfg.damping else 0.0
  end
  else if Float.is_finite s_d && s_d < 0.0 then -.s_d *. cfg.damping
  else if Float.is_finite s_q && s_q < 0.0 then s_q *. cfg.damping
  else 0.0

(* [step] is provably 0 whenever min(s_D, s_Q) >= 0: every branch that
   returns a nonzero delta requires a negative finite slack on a
   connected side. And a register already at the bound with a nonzero
   delta clamps back to its current value, below the 0.5 ps move
   threshold. So a sweep can only move registers with min(s_D, s_Q) < 0
   — the [active] set — and [Engine.update_skews_touched] reports the
   complete set of registers whose D/Q slacks an applied move batch can
   have changed, so activity only needs re-reading for those. The
   worklist sweep therefore computes exactly the move set of a
   whole-design sweep ([full_sweep:true], kept as the property-test
   reference) while reading O(active + touched) slacks per iteration
   instead of O(registers). *)
let optimize ?(config = default_config) ?(full_sweep = false) ?cancel eng =
  let dsg = Placement.design (Engine.placement eng) in
  (* all slack reads go through the worst-corner view: under a
     multi-corner set a sweep balances each register's worst D side
     against its worst Q side, whichever corners those come from *)
  let tv = Timing_view.of_engine eng in
  let regs = Array.of_list (Design.registers dsg) in
  let n = Array.length regs in
  let ix = Hashtbl.create (max 16 n) in
  Array.iteri (fun i r -> Hashtbl.replace ix r i) regs;
  Engine.refresh eng;
  let wns_before, tns_before = Timing_view.wns_tns tv in
  let clamp v = Float.max (-.config.bound) (Float.min config.bound v) in
  (* flat mirrors of the engine's skew table: snapshots are an
     Array.blit, restore is a diff — no per-sweep assoc lists *)
  let cur = Array.init n (fun i -> Engine.skew eng regs.(i)) in
  let best = Array.copy cur in
  let best_tns = ref tns_before and best_wns = ref wns_before in
  let active = Array.make n false in
  let refresh_activity i =
    let r = regs.(i) in
    active.(i) <-
      Float.min (Timing_view.reg_d_slack tv r) (Timing_view.reg_q_slack tv r)
      < 0.0
  in
  if not full_sweep then
    for i = 0 to n - 1 do
      refresh_activity i
    done;
  let sweeps = ref 0 in
  let poll () =
    match cancel with Some t -> Mbr_util.Cancel.check t | None -> false
  in
  (try
     for _ = 1 to config.iterations do
       (* cancellation exits like convergence does: the best assignment
          seen so far is restored below, never a half-applied sweep *)
       if poll () then raise Exit;
       incr sweeps;
       (* Jacobi sweep: read every candidate slack under the current
          assignment, then apply all moves at once; the engine patches
          only the affected timing cones. *)
       let moves = ref [] in
       for i = n - 1 downto 0 do
         if full_sweep || active.(i) then begin
           let r = regs.(i) in
           let delta =
             step config
               (Timing_view.reg_d_slack tv r)
               (Timing_view.reg_q_slack tv r)
           in
           let next = clamp (cur.(i) +. delta) in
           if Float.abs (next -. cur.(i)) > 0.5 then moves := (i, next) :: !moves
         end
       done;
       if !moves = [] then raise Exit;
       let assignments = List.map (fun (i, next) -> (regs.(i), next)) !moves in
       let touched = Engine.update_skews_touched eng assignments in
       List.iter (fun (i, next) -> cur.(i) <- next) !moves;
       if not full_sweep then
         List.iter
           (fun r ->
             match Hashtbl.find_opt ix r with
             | Some i -> refresh_activity i
             | None -> ())
           touched;
       let wns, tns = Timing_view.wns_tns tv in
       if (tns, wns) > (!best_tns, !best_wns) then begin
         best_tns := tns;
         best_wns := wns;
         Array.blit cur 0 best 0 n
       end
     done
   with Exit -> ());
  (* restore the best assignment seen; only the diffs reach the engine *)
  let restore = ref [] in
  for i = n - 1 downto 0 do
    if cur.(i) <> best.(i) then restore := (regs.(i), best.(i)) :: !restore
  done;
  if !restore <> [] then Engine.update_skews eng !restore;
  let wns_after, tns_after = Timing_view.wns_tns tv in
  let max_abs_skew =
    Array.fold_left (fun acc s -> Float.max acc (Float.abs s)) 0.0 best
  in
  { wns_before; wns_after; tns_before; tns_after; max_abs_skew; sweeps_run = !sweeps }
