module Placement = Mbr_place.Placement

type config = { bound : float; iterations : int; damping : float }

let default_config = { bound = 120.0; iterations = 8; damping = 0.6 }

type report = {
  wns_before : float;
  wns_after : float;
  tns_before : float;
  tns_after : float;
  max_abs_skew : float;
  sweeps_run : int;
}

(* One register's skew step given its current worst D/Q slacks: balance
   the two sides when either violates; one-sided registers are pushed
   whole-hog in the helpful direction. *)
let step cfg s_d s_q =
  if Float.is_finite s_d && Float.is_finite s_q then begin
    if Float.min s_d s_q < 0.0 then (s_q -. s_d) /. 2.0 *. cfg.damping else 0.0
  end
  else if Float.is_finite s_d && s_d < 0.0 then -.s_d *. cfg.damping
  else if Float.is_finite s_q && s_q < 0.0 then s_q *. cfg.damping
  else 0.0

(* [step] is provably 0 whenever min(s_D, s_Q) >= 0: every branch that
   returns a nonzero delta requires a negative finite slack on a
   connected side. And a register already at the bound with a nonzero
   delta clamps back to its current value, below the 0.5 ps move
   threshold. So a sweep can only move registers with min(s_D, s_Q) < 0
   — the active set — and [Engine.update_skews_touched] reports the
   complete set of registers whose D/Q slacks an applied move batch can
   have changed, so slacks only need re-reading for those. Each sweep
   sorts the active set worst-criticality-first and stops at the first
   non-negative entry: because the move deltas are Jacobi (all read
   under the pre-sweep assignment), visiting order cannot change the
   move set, so the sorted early-exit sweep computes exactly the move
   set of a whole-design sweep ([full_sweep:true], kept as the
   property-test reference) while reading O(active + touched) slacks
   per iteration instead of O(registers). *)
let optimize ?(config = default_config) ?(full_sweep = false) ?(jobs = 1)
    ?cancel eng =
  (* never fan the per-corner sweeps out to more domains than the host
     actually has: on a single hardware thread the per-sweep domain
     spawn + join overhead (x2 passes x iterations) costs far more
     than the interleaved serial walk it displaces — measured ~2x on
     the scale-4 3-corner ladder vs ~1.2x serial. Callers that want an
     explicit oversubscribed fan-out (the parallel-equivalence
     property) call {!Engine.update_skews_touched} directly. *)
  let jobs = min jobs (Mbr_util.Pool.recommended_jobs ()) in
  (* all slack reads go through the worst-corner view: under a
     multi-corner set a sweep balances each register's worst D side
     against its worst Q side, whichever corners those come from *)
  let tv = Timing_view.of_engine eng in
  Engine.refresh eng;
  let regs, slot = Engine.register_index eng in
  let n = Array.length regs in
  let wns_before, tns_before = Timing_view.wns_tns tv in
  let clamp v = Float.max (-.config.bound) (Float.min config.bound v) in
  (* flat mirrors of the engine's skew table: snapshots are an
     Array.blit, restore is a diff — no per-sweep assoc lists *)
  let cur = Array.init n (fun i -> Engine.skew eng regs.(i)) in
  let best = Array.copy cur in
  let best_tns = ref tns_before and best_wns = ref wns_before in
  (* cached per-register worst D/Q slacks, valid under the current
     assignment: refreshed only for the registers a move batch touched *)
  let sd = Array.make n infinity and sq = Array.make n infinity in
  let crit i = Float.min sd.(i) sq.(i) in
  let refresh_slacks i =
    let r = regs.(i) in
    sd.(i) <- Timing_view.reg_d_slack tv r;
    sq.(i) <- Timing_view.reg_q_slack tv r
  in
  if not full_sweep then
    for i = 0 to n - 1 do
      refresh_slacks i
    done;
  (* scratch for the per-sweep criticality ordering *)
  let order = Array.make (max 1 n) 0 in
  let sweeps = ref 0 in
  let poll () =
    match cancel with Some t -> Mbr_util.Cancel.check t | None -> false
  in
  Mbr_obs.Trace.with_span ~name:"skew.sweeps" (fun () ->
  try
     for _ = 1 to config.iterations do
       (* cancellation exits like convergence does: the best assignment
          seen so far is restored below, never a half-applied sweep *)
       if poll () then raise Exit;
       incr sweeps;
       (* Jacobi sweep: read every candidate slack under the current
          assignment, then apply all moves at once; the engine patches
          only the affected timing cones. *)
       let moves = ref [] in
       if full_sweep then
         for i = n - 1 downto 0 do
           let r = regs.(i) in
           let delta =
             step config
               (Timing_view.reg_d_slack tv r)
               (Timing_view.reg_q_slack tv r)
           in
           let next = clamp (cur.(i) +. delta) in
           if Float.abs (next -. cur.(i)) > 0.5 then moves := (i, next) :: !moves
         done
       else begin
         (* worst slack first: collect the active set and sort it by
            criticality (ties by index for determinism). In the full
            sorted order the active set is exactly the prefix below
            slack 0, so stopping at the frontier = walking only [sub];
            everything past it provably cannot move *)
         let na = ref 0 in
         for i = 0 to n - 1 do
           if crit i < 0.0 then begin
             order.(!na) <- i;
             incr na
           end
         done;
         let sub = Array.sub order 0 !na in
         Array.sort
           (fun a b ->
             let c = Float.compare (crit a) (crit b) in
             if c <> 0 then c else compare a b)
           sub;
         Array.iter
           (fun i ->
             let delta = step config sd.(i) sq.(i) in
             let next = clamp (cur.(i) +. delta) in
             if Float.abs (next -. cur.(i)) > 0.5 then
               moves := (i, next) :: !moves)
           sub
       end;
       if !moves = [] then raise Exit;
       let assignments = List.map (fun (i, next) -> (regs.(i), next)) !moves in
       let touched = Engine.update_skews_touched ~jobs ?cancel eng assignments in
       List.iter (fun (i, next) -> cur.(i) <- next) !moves;
       if not full_sweep then
         List.iter
           (fun r ->
             if r >= 0 && r < Array.length slot && slot.(r) >= 0 then
               refresh_slacks slot.(r))
           touched;
       let wns, tns = Timing_view.wns_tns tv in
       if (tns, wns) > (!best_tns, !best_wns) then begin
         best_tns := tns;
         best_wns := wns;
         Array.blit cur 0 best 0 n
       end
     done
  with Exit -> ());
  (* restore the best assignment seen; only the diffs reach the engine *)
  let restore = ref [] in
  for i = n - 1 downto 0 do
    if cur.(i) <> best.(i) then restore := (regs.(i), best.(i)) :: !restore
  done;
  if !restore <> [] then Engine.update_skews ~jobs eng !restore;
  let wns_after, tns_after = Timing_view.wns_tns tv in
  let max_abs_skew =
    Array.fold_left (fun acc s -> Float.max acc (Float.abs s)) 0.0 best
  in
  { wns_before; wns_after; tns_before; tns_after; max_abs_skew; sweeps_run = !sweeps }
