(* A timing corner is a set of multiplicative derates on the linear
   delay model: cell delays (comb arcs + clk->q), wire delays, and
   setup requirements each get their own factor. The engine analyzes
   every corner of its active set against one shared topology; see
   DESIGN.md §15. *)

type t = { name : string; cell : float; wire : float; setup : float }

let typical = { name = "typical"; cell = 1.0; wire = 1.0; setup = 1.0 }

let slow = { name = "slow"; cell = 1.12; wire = 1.18; setup = 1.05 }

let fast = { name = "fast"; cell = 0.88; wire = 0.92; setup = 1.0 }

(* A deliberately punishing derate set for recovery-loop stress tests:
   wire-dominated paths stretch by half again, so MBR composition's
   displacement shows up as worst-corner violations. *)
let harsh = { name = "harsh"; cell = 1.30; wire = 1.50; setup = 1.20 }

let named = [ typical; slow; fast; harsh ]

let is_unit c = c.cell = 1.0 && c.wire = 1.0 && c.setup = 1.0

let default = [| typical |]

let make ~name ~cell ~wire ~setup =
  if not (cell > 0.0 && wire > 0.0 && setup > 0.0) then
    invalid_arg "Corner.make: derate factors must be positive";
  { name; cell; wire; setup }

(* The designgen derate-profile knob: spread 0 is the single typical
   corner; a positive spread adds one wire-heavy slow corner whose
   factors scale with the spread (wire derates hardest — composition
   moves registers, and moved wire is what a corner disagreement is
   about). *)
let spread_set s =
  if s <= 0.0 then default
  else
    [|
      typical;
      {
        name = "derated";
        cell = 1.0 +. s;
        wire = 1.0 +. (1.5 *. s);
        setup = 1.0 +. (0.5 *. s);
      };
    |]

let to_string c =
  if List.exists (fun n -> n.name = c.name && n = c) named then c.name
  else Printf.sprintf "%s:%g:%g:%g" c.name c.cell c.wire c.setup

let set_to_string cs =
  String.concat "," (List.map to_string (Array.to_list cs))

let parse_one s =
  match String.split_on_char ':' s with
  | [ name ] -> (
    match List.find_opt (fun c -> c.name = name) named with
    | Some c -> Ok c
    | None ->
      Error
        (Printf.sprintf
           "unknown corner %S (expected one of %s, or name:cell:wire:setup)"
           name
           (String.concat ", " (List.map (fun c -> c.name) named))))
  | [ name; cell; wire; setup ] -> (
    match
      (float_of_string_opt cell, float_of_string_opt wire,
       float_of_string_opt setup)
    with
    | Some cell, Some wire, Some setup
      when cell > 0.0 && wire > 0.0 && setup > 0.0 ->
      Ok { name; cell; wire; setup }
    | _ ->
      Error
        (Printf.sprintf "corner %S: derates must be positive numbers" name))
  | _ ->
    Error (Printf.sprintf "cannot parse corner %S (want name or name:c:w:s)" s)

let parse_set s =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' (String.trim s))
  in
  if parts = [] then Error "empty corner set"
  else
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest -> (
        match parse_one (String.trim p) with
        | Ok c -> go (c :: acc) rest
        | Error m -> Error m)
    in
    go [] parts
