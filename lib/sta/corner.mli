(** Timing corners: multiplicative derate sets on the linear delay
    model. The {!Engine} analyzes one shared graph under every corner
    of its active set; consumers read worst-corner slack through
    {!Timing_view} rather than indexing corners by hand. *)

type t = {
  name : string;
  cell : float;  (** derate on comb arc delay and clk->q *)
  wire : float;  (** derate on RC wire delay *)
  setup : float;  (** derate on register setup requirement *)
}

val typical : t
(** All-unit derates. A single-[typical] run is bit-identical to the
    historical single-corner engine (IEEE: [x *. 1.0 = x]). *)

val slow : t
val fast : t

val harsh : t
(** Aggressive wire-heavy derates (cell 1.30 / wire 1.50 / setup
    1.20), used by the recovery-loop smoke to force post-compose
    violations. *)

val named : t list
(** The built-in corners, addressable by name in {!parse_set}. *)

val is_unit : t -> bool

val default : t array
(** [[| typical |]] — the single-corner set every entry point assumes
    unless told otherwise. *)

val make : name:string -> cell:float -> wire:float -> setup:float -> t
(** @raise Invalid_argument if any factor is non-positive. *)

val spread_set : float -> t array
(** Designgen derate-profile knob: [spread_set 0.0] is {!default};
    a positive spread [s] yields [[| typical; derated |]] where the
    derated corner scales cell by [1+s], wire by [1+1.5s], setup by
    [1+0.5s]. *)

val to_string : t -> string
(** Built-in corners print as their bare name; custom corners as
    [name:cell:wire:setup]. *)

val set_to_string : t array -> string
(** Comma-joined {!to_string}; inverse of {!parse_set}. *)

val parse_one : string -> (t, string) result

val parse_set : string -> (t array, string) result
(** Parse a comma-separated corner list. Each element is either a
    built-in name ([typical], [slow], [fast], [harsh]) or a custom
    [name:cell:wire:setup] quadruple with positive factors. *)
