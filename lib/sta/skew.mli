(** Useful-skew assignment (Fishburn-style, iterative).

    Shifting a register's clock later by δ adds δ of slack to the
    paths ending at its D pins and removes δ from the paths launched
    from its Q pins. With s_D the worst D-pin slack and s_Q the worst
    Q-pin (downstream) slack, the per-register optimum balances the two:
    δ* = (s_Q − s_D) / 2, clamped to the skew bound.
    Registers interact through shared paths, so the balancing is
    applied with damping and iterated to a fixed point (the paper's
    Fig. 4 applies useful skew right after composition, which is why
    composition only merges registers with {e similar} D/Q slacks:
    a single δ must fit all merged bits). *)

type config = {
  bound : float;  (** |skew| limit, ps *)
  iterations : int;  (** sweeps (default 8) *)
  damping : float;  (** step fraction per sweep, in (0, 1] *)
}

val default_config : config

type report = {
  wns_before : float;
  wns_after : float;
  tns_before : float;
  tns_after : float;
  max_abs_skew : float;
  sweeps_run : int;
}

val optimize :
  ?config:config ->
  ?full_sweep:bool ->
  ?jobs:int ->
  ?cancel:Mbr_util.Cancel.t ->
  Engine.t ->
  report
(** Assign per-register skews on the engine (visible via
    {!Engine.skew}) and re-analyze. Never returns a solution worse than
    the zero-skew start: the final sweep keeps the best-TNS
    assignment encountered.

    By default each sweep examines only the worklist of registers with
    a negative connected-side slack — worst criticality first, with an
    early exit at the zero-slack frontier — maintained as cached D/Q
    slacks refreshed from the registers
    {!Engine.update_skews_touched} reports after each move batch:
    [step] returns 0 for every register outside the worklist and the
    sweep is Jacobi (deltas all read under the pre-sweep assignment),
    so the move set (and hence the result, bit for bit) is identical to
    examining every register in any order. [~full_sweep:true] forces
    the whole-design sweep; it exists as the reference implementation
    for the equivalence property test and for diagnostics. The register
    index comes from {!Engine.register_index} — no per-call hashing.

    [jobs] is handed to {!Engine.update_skews_touched}: with
    [jobs > 1] on a multi-corner engine each move batch propagates its
    corners in parallel (bit-identical to serial).

    [cancel] is polled once per sweep before any move is read, and
    once per propagation level inside {!Engine.update_skews_touched}
    (which always completes its batch — see its doc): a tripped token
    ends the optimization at the next sweep boundary exactly as
    convergence does, restoring the best complete assignment seen so
    far — never a half-applied sweep. The never-worse-than-zero-skew
    guarantee above holds for cancelled runs too. *)
