module Point = Mbr_geom.Point
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Cell_lib = Mbr_liberty.Cell

type config = {
  clock_period : float;
  wire_res : float;
  wire_cap : float;
  input_delay : float;
  output_delay : float;
}

let default_config =
  {
    clock_period = 800.0;
    wire_res = 0.002;
    wire_cap = 0.2;
    input_delay = 40.0;
    output_delay = 40.0;
  }

(* One timing arc, shared between the source's successor list and the
   destination's predecessor list. Arc delays depend on pin locations
   and net loads, so they are recomputed per analysis — but the memo
   lives in the edge record itself, valid while [e_gen] matches the
   engine's current delay generation, and the propagation hot loops
   never touch a hash table. The memo holds one derated delay per
   active corner (index-aligned with the engine's corner set; an
   array whose length disagrees with the set is stale regardless of
   generation). A full invalidation (every [analyze], which absorbs
   placement moves) is a single generation bump; selective
   invalidation stamps the record stale. Fresh splices start at
   generation -1, which never matches, and because the record is
   shared a delay is computed at most once per arc per generation no
   matter which direction reaches it first. [e_cell] distinguishes a
   comb input->output arc from a net driver->sink arc. *)
type edge = {
  e_src : Types.pin_id;
  e_dst : Types.pin_id;
  e_cell : bool;
  mutable e_delay : float array;
  mutable e_gen : int;
}

let mk_edge ~cell src dst =
  { e_src = src; e_dst = dst; e_cell = cell; e_delay = [||]; e_gen = -1 }

type endpoint_kind = Ep_reg_d of Types.cell_id | Ep_out_port

(* A binary min-heap of (priority, pin) pairs: the dirty-pin worklists
   process pins in topological order so every predecessor is final
   before a pin is recomputed. *)
module Pq = struct
  type t = { mutable a : (int * int) array; mutable len : int }

  let create () = { a = Array.make 64 (0, 0); len = 0 }

  let is_empty h = h.len = 0

  let push h x =
    if h.len = Array.length h.a then begin
      let b = Array.make (2 * h.len) (0, 0) in
      Array.blit h.a 0 b 0 h.len;
      h.a <- b
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.a.(!i) <- x;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if fst h.a.(p) > fst h.a.(!i) then begin
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := p
      end
      else continue := false
    done

  let pop h =
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.len && fst h.a.(l) < fst h.a.(!m) then m := l;
      if r < h.len && fst h.a.(r) < fst h.a.(!m) then m := r;
      if !m <> !i then begin
        let tmp = h.a.(!m) in
        h.a.(!m) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !m
      end
      else continue := false
    done;
    snd top
end

(* Arrival/required storage: one flat [Bigarray] float64 plane per
   corner, indexed by pin id. Unboxed end to end — the propagation
   inner loops and the worst-corner folds read and write raw doubles,
   never a boxed [float array array] cell — and a plane is a single
   malloc'd block outside the OCaml heap, so 100k-register planes
   neither fragment the major heap nor add GC scan work. *)
type plane =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let plane_make n v : plane =
  let p = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max n 0) in
  Bigarray.Array1.fill p v;
  p

(* All plane indices come from the engine's own graph arrays (or are
   bounds-checked by the accessor), so the hot paths skip the per-read
   bounds test. *)
let pget : plane -> int -> float = Bigarray.Array1.unsafe_get

let pset : plane -> int -> float -> unit = Bigarray.Array1.unsafe_set

(* A growable int buffer for changed-pin collection: [int array] backed
   (unboxed), unlike a list whose cons cells would churn the minor heap
   once per changed pin. *)
type ivec = { mutable iv_a : int array; mutable iv_len : int }

let ivec_create () = { iv_a = Array.make 64 0; iv_len = 0 }

let ivec_push v x =
  if v.iv_len = Array.length v.iv_a then begin
    let b = Array.make (2 * v.iv_len) 0 in
    Array.blit v.iv_a 0 b 0 v.iv_len;
    v.iv_a <- b
  end;
  v.iv_a.(v.iv_len) <- x;
  v.iv_len <- v.iv_len + 1

(* The levelized propagation plan and its per-corner scratch; see the
   skew-propagation section below. *)
type plan_scratch = {
  ps_mark : int array;  (* per-pin epoch stamp: queued this pass *)
  ps_next : int array;  (* intrusive per-level singly-linked list *)
  ps_head : int array;  (* level -> first queued pin, -1 when empty *)
  ps_tmp : float array;  (* per-corner recompute scratch *)
  mutable ps_epoch : int;
}

type plan = {
  pl_struct_gen : int;
  mutable pl_delay_gen : int;
      (* delays can be refilled in place when only [delay_gen] moved
         (an [analyze] absorbing placement moves): the CSR layout is
         keyed by [pl_struct_gen] alone *)
  pl_nc : int;
  pl_level : int array;
      (* forward topological level per pin (-1 outside the graph);
         every arc strictly increases the level, so the pins of one
         level are mutually independent in both directions *)
  pl_n_levels : int;
  (* CSR adjacency with the per-corner derated delays flattened
     alongside (entry-major: pred entry [j]'s corner-[k] delay sits at
     [j * nc + k]) — the propagation loops stream flat int/float
     arrays instead of chasing [edge list] cons cells; each direction
     streams its own delay image sequentially *)
  pr_off : int array;
  pr_src : int array;
  pr_cell : Bytes.t;
      (* per pred entry, 1 when the arc is a cell arc — lets the delay
         refill stream the CSR without touching the edge records *)
  pr_delay : float array;
  su_off : int array;
  su_dst : int array;
  su_delay : float array;
  su_pr : int array;
      (* per succ entry, the pred-CSR entry of the same arc — used only
         by the delay refill to gather [su_delay] from [pr_delay]; the
         hot backward passes never touch it *)
  (* startpoint launch = skew(st_cell) + st_base (st_base alone for
     skewless startpoints); endpoint required =
     (clock_period + skew(ep_cell)) - ep_term (period - ep_term when
     skewless). Float op order matches [launch_arrival] /
     [endpoint_required] exactly, so recomputed values are
     bit-identical. *)
  st_slot : int array;
  st_cell : int array;
  st_base : float array;
  ep_slot : int array;
  ep_cell : int array;
  ep_term : float array;
  pl_scratch : plan_scratch option array;
      (* one lazily-created scratch per corner slot; slot 0 doubles as
         the serial (all-corners-at-once) scratch. A parallel fan-out
         gives each corner its own slot, so tasks never share mutable
         scratch. *)
}

type t = {
  cfg : config;
  pl : Placement.t;
  dsg : Design.t;
  mutable corners : Corner.t array;
  mutable n : int; (* pin count covered by the arrays below *)
  mutable in_graph : bool array;
  mutable succs : edge list array;
  mutable preds : edge list array;
  mutable topo : Types.pin_id array;
  mutable topo_pos : int array;
      (** pin -> index in [topo] (-1 outside graph) *)
  mutable is_start : bool array;
  mutable ep_of : endpoint_kind option array;
  mutable startpoints : Types.pin_id list;
  mutable endpoints : (Types.pin_id * endpoint_kind) list;
  mutable net_arcs : (Types.net_id, (Types.pin_id * Types.pin_id) list) Hashtbl.t;
      (** net arcs currently spliced into succs/preds, per net *)
  skews : (Types.cell_id, float) Hashtbl.t;
  mutable skew_dense : float array;
      (* dense mirror of [skews] (0.0 = unset, the default): the
         propagation passes read a skew per start/endpoint per pass, and
         an array load there beats a Hashtbl probe *)
  mutable arrival : plane;
      (* corner-interleaved: one flat float64 plane indexed
         [pid * nc + k], so all corners of a pin share a cache line and
         a pred/succ read costs one miss regardless of the corner
         count. Reachability is structural — a pin has a finite arrival
         in one corner iff it does in every corner — so loops may guard
         on corner 0 alone. *)
  mutable required : plane;
  mutable delay_gen : int; (* current validity stamp for edge memos *)
  mutable struct_gen : int;
      (* bumped whenever graph structure or spliced arc delays change
         outside an [analyze] (rebuild, grow, incremental refresh);
         with [delay_gen] it keys the propagation plan's validity *)
  mutable plan : plan option;
  mutable reg_cache : (int * Types.cell_id array * int array) option;
      (* design revision, registers in [Design.registers] order, dense
         cell-id -> slot map (-1 for non-registers) *)
  mutable analyzed : bool;
  mutable dsg_cursor : int;  (** design edits already reflected *)
  mutable pl_cursor : int;  (** placement moves already reflected *)
  mutable n_full_builds : int;
  mutable n_refreshes : int;
  (* Epoch-scoped net-load memo. A load folds the sink caps and the
     net's bounding box, and the same net is consulted once per comb
     arc through its driver plus once per launch seed — [nl_open]
     starts a fresh epoch at every point where design and placement
     are frozen for the duration (analyze, plan delay fill, refresh),
     and [net_load_memo] then computes each net at most once. Query
     paths outside those windows keep calling the raw [net_load]. *)
  mutable nl_cache : float array;
  mutable nl_stamp : int array;
  mutable nl_epoch : int;
}

exception Combinational_cycle of Types.pin_id list

let () =
  Printexc.register_printer (function
    | Combinational_cycle pins ->
      Some
        (Printf.sprintf "Sta.Combinational_cycle (%d pins): %s"
           (max 0 (List.length pins - 1))
           (String.concat " -> " (List.map string_of_int pins)))
    | _ -> None)

let cycle_to_string dsg pins =
  String.concat " -> "
    (List.map
       (fun pid ->
         let p = Design.pin dsg pid in
         let c = Design.cell dsg p.Types.p_cell in
         Printf.sprintf "%s/%s" c.Types.c_name
           (Types.pin_kind_to_string p.Types.p_kind))
       pins)

let config t = t.cfg

let placement t = t.pl

let corners t = t.corners

let n_corners t = Array.length t.corners

let write_skew t id s =
  Hashtbl.replace t.skews id s;
  if id >= Array.length t.skew_dense then begin
    let b = Array.make (max (id + 1) (2 * Array.length t.skew_dense)) 0.0 in
    Array.blit t.skew_dense 0 b 0 (Array.length t.skew_dense);
    t.skew_dense <- b
  end;
  t.skew_dense.(id) <- s

let set_skew t id s =
  write_skew t id s;
  t.analyzed <- false

let skew t id =
  if id >= 0 && id < Array.length t.skew_dense then
    Array.unsafe_get t.skew_dense id
  else 0.0

let skew_assignments t =
  Hashtbl.fold
    (fun cid s acc -> if s <> 0.0 then (cid, s) :: acc else acc)
    t.skews []
  |> List.sort compare

(* The data graph excludes clock distribution and scan pins. *)
let data_pin dsg pid =
  let p = Design.pin dsg pid in
  let c = Design.cell dsg p.Types.p_cell in
  if c.Types.c_dead then false
  else
    match (c.Types.c_kind, p.Types.p_kind) with
    | Types.Register _, (Types.Pin_d _ | Types.Pin_q _) -> true
    | Types.Register _, _ -> false
    | Types.Comb _, (Types.Pin_in _ | Types.Pin_out) -> true
    | Types.Comb _, _ -> false
    | Types.Port _, Types.Pin_port -> true
    | Types.Port _, _ -> false
    | (Types.Clock_root | Types.Clock_gate _), _ -> false

(* Data net arcs (driver -> each sink) under the current membership;
   clock nets and nets without an in-graph driver contribute none. *)
let net_arc_pairs dsg in_graph nid =
  let net = Design.net dsg nid in
  if net.Types.n_is_clock then []
  else
    match Design.driver dsg nid with
    | Some d when d < Array.length in_graph && in_graph.(d) ->
      List.filter_map
        (fun s -> if in_graph.(s) then Some (d, s) else None)
        (Design.sinks dsg nid)
    | Some _ | None -> []

(* The start/endpoint status a pin should have given the current
   connectivity (None kind for pins that are neither). *)
let pin_start_end dsg pid =
  let p = Design.pin dsg pid in
  let c = Design.cell dsg p.Types.p_cell in
  match (c.Types.c_kind, p.Types.p_kind) with
  | Types.Register _, Types.Pin_q _ -> (p.Types.p_net <> None, None)
  | Types.Register _, Types.Pin_d _ ->
    (false, if p.Types.p_net <> None then Some (Ep_reg_d p.Types.p_cell) else None)
  | Types.Port Types.In_port, _ -> (true, None)
  | Types.Port Types.Out_port, _ ->
    (false, if p.Types.p_net <> None then Some Ep_out_port else None)
  | _, _ -> (false, None)

type graph_parts = {
  g_n : int;
  g_in_graph : bool array;
  g_succs : edge list array;
  g_preds : edge list array;
  g_topo : Types.pin_id array;
  g_topo_pos : int array;
  g_is_start : bool array;
  g_ep_of : endpoint_kind option array;
  g_startpoints : Types.pin_id list;
  g_endpoints : (Types.pin_id * endpoint_kind) list;
  g_net_arcs : (Types.net_id, (Types.pin_id * Types.pin_id) list) Hashtbl.t;
}

let compute_graph dsg =
  let n = Design.n_pins dsg in
  let in_graph = Array.make n false in
  for pid = 0 to n - 1 do
    in_graph.(pid) <- data_pin dsg pid
  done;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  (* in-degrees are tallied as arcs are created, so Kahn below never
     has to re-walk the pred lists *)
  let indeg = Array.make n 0 in
  let add_arc ~cell src dst =
    let e = mk_edge ~cell src dst in
    succs.(src) <- e :: succs.(src);
    preds.(dst) <- e :: preds.(dst);
    indeg.(dst) <- indeg.(dst) + 1
  in
  (* net arcs *)
  let net_arcs = Hashtbl.create 1024 in
  for nid = 0 to Design.n_nets dsg - 1 do
    match net_arc_pairs dsg in_graph nid with
    | [] -> ()
    | pairs ->
      Hashtbl.replace net_arcs nid pairs;
      List.iter (fun (d, s) -> add_arc ~cell:false d s) pairs
  done;
  (* comb cell arcs *)
  List.iter
    (fun cid ->
      let c = Design.cell dsg cid in
      match c.Types.c_kind with
      | Types.Comb _ ->
        (* arcs from every input to every output; the double walk over
           [c_pins] costs the same pin lookups as a partition without
           allocating the two intermediate lists *)
        List.iter
          (fun o ->
            if (Design.pin dsg o).Types.p_dir = Types.Output && in_graph.(o)
            then
              List.iter
                (fun i ->
                  if
                    (Design.pin dsg i).Types.p_dir = Types.Input
                    && in_graph.(i)
                  then add_arc ~cell:true i o)
                c.Types.c_pins)
          c.Types.c_pins
      | Types.Register _ | Types.Clock_root | Types.Clock_gate _ | Types.Port _
        ->
        ())
    (Design.live_cells dsg);
  (* start / end points *)
  let startpoints = ref [] in
  let endpoints = ref [] in
  for pid = 0 to n - 1 do
    if in_graph.(pid) then begin
      let p = Design.pin dsg pid in
      let c = Design.cell dsg p.Types.p_cell in
      match (c.Types.c_kind, p.Types.p_kind) with
      | Types.Register _, Types.Pin_q _ ->
        if p.Types.p_net <> None then startpoints := pid :: !startpoints
      | Types.Register _, Types.Pin_d _ ->
        if p.Types.p_net <> None then
          endpoints := (pid, Ep_reg_d p.Types.p_cell) :: !endpoints
      | Types.Port Types.In_port, _ -> startpoints := pid :: !startpoints
      | Types.Port Types.Out_port, _ ->
        if p.Types.p_net <> None then
          endpoints := (pid, Ep_out_port) :: !endpoints
      | _, _ -> ()
    end
  done;
  (* in-place Kahn: [topo.(0..k)] doubles as the ready queue — resolved
     pins are final in [topo] the moment they are appended, so no
     separate FIFO (or its per-element allocation) is needed *)
  let topo = Array.make n (-1) in
  let k = ref 0 in
  for pid = 0 to n - 1 do
    if in_graph.(pid) && indeg.(pid) = 0 then begin
      topo.(!k) <- pid;
      incr k
    end
  done;
  let i = ref 0 in
  while !i < !k do
    let pid = topo.(!i) in
    incr i;
    List.iter
      (fun e ->
        let d = indeg.(e.e_dst) - 1 in
        indeg.(e.e_dst) <- d;
        if d = 0 then begin
          topo.(!k) <- e.e_dst;
          incr k
        end)
      succs.(pid)
  done;
  let n_in_graph = ref 0 in
  Array.iter (fun b -> if b then incr n_in_graph) in_graph;
  if !k <> !n_in_graph then begin
    (* Kahn left some pins unresolved: every one of them has an
       un-decremented incoming edge, i.e. an unresolved predecessor, so
       walking predecessors from any of them must close a loop. The
       witness is reported in data-flow (successor) order, closed by
       repeating the entry pin. *)
    let start = ref (-1) in
    (try
       for pid = 0 to n - 1 do
         if in_graph.(pid) && indeg.(pid) > 0 then begin
           start := pid;
           raise Exit
         end
       done
     with Exit -> ());
    let witness =
      if !start < 0 then []
      else begin
        let seen = Hashtbl.create 16 in
        let rec walk pid path =
          if Hashtbl.mem seen pid then begin
            (* [path] holds the predecessor walk in reverse; the loop is
               the segment from the first visit of [pid] onward, closed
               by [pid] itself, flipped into data-flow order *)
            let rec keep_from = function
              | p :: _ as l when p = pid -> l
              | _ :: tl -> keep_from tl
              | [] -> []
            in
            List.rev (keep_from (List.rev path) @ [ pid ])
          end
          else begin
            Hashtbl.add seen pid ();
            match List.find_opt (fun e -> indeg.(e.e_src) > 0) preds.(pid) with
            | Some e -> walk e.e_src (pid :: path)
            | None -> List.rev (pid :: path)
          end
        in
        walk !start []
      end
    in
    raise (Combinational_cycle witness)
  end;
  let topo = Array.sub topo 0 !k in
  let topo_pos = Array.make n (-1) in
  Array.iteri (fun idx pid -> topo_pos.(pid) <- idx) topo;
  let is_start = Array.make n false in
  List.iter (fun pid -> is_start.(pid) <- true) !startpoints;
  let ep_of = Array.make n None in
  List.iter (fun (pid, kind) -> ep_of.(pid) <- Some kind) !endpoints;
  {
    g_n = n;
    g_in_graph = in_graph;
    g_succs = succs;
    g_preds = preds;
    g_topo = topo;
    g_topo_pos = topo_pos;
    g_is_start = is_start;
    g_ep_of = ep_of;
    g_startpoints = !startpoints;
    g_endpoints = !endpoints;
    g_net_arcs = net_arcs;
  }

let m_corners = Mbr_obs.Metrics.counter "sta.corners"

let build ?(config = default_config) ?(corners = Corner.default) pl =
  if Array.length corners = 0 then
    invalid_arg "Sta.build: empty corner set";
  let dsg = Placement.design pl in
  let g = compute_graph dsg in
  (* [compute_graph]'s table is fresh per call — own it directly *)
  let net_arcs = g.g_net_arcs in
  let nc = Array.length corners in
  Mbr_obs.Metrics.incr ~by:nc m_corners;
  {
    cfg = config;
    pl;
    dsg;
    corners = Array.copy corners;
    n = g.g_n;
    in_graph = g.g_in_graph;
    succs = g.g_succs;
    preds = g.g_preds;
    topo = g.g_topo;
    topo_pos = g.g_topo_pos;
    is_start = g.g_is_start;
    ep_of = g.g_ep_of;
    startpoints = g.g_startpoints;
    endpoints = g.g_endpoints;
    net_arcs;
    skews = Hashtbl.create 64;
    skew_dense = [||];
    arrival = plane_make (g.g_n * nc) neg_infinity;
    required = plane_make (g.g_n * nc) infinity;
    delay_gen = 0;
    struct_gen = 0;
    plan = None;
    reg_cache = None;
    analyzed = false;
    dsg_cursor = Design.revision dsg;
    pl_cursor = Placement.revision pl;
    n_full_builds = 1;
    n_refreshes = 0;
    nl_cache = [||];
    nl_stamp = [||];
    nl_epoch = 0;
  }

let set_corners t cs =
  if Array.length cs = 0 then invalid_arg "Sta.set_corners: empty corner set";
  t.corners <- Array.copy cs;
  let nc = Array.length cs in
  t.arrival <- plane_make (t.n * nc) neg_infinity;
  t.required <- plane_make (t.n * nc) infinity;
  t.plan <- None;
  t.analyzed <- false;
  Mbr_obs.Metrics.incr ~by:nc m_corners

(* Packed register index, cached per design revision: the registers in
   [Design.registers] order plus a dense cell-id -> slot map. Shared by
   the skew optimizer and the touched-register reporting so neither
   re-hashes ~100k registers per call. Both arrays are read-only to
   callers. *)
let register_index t =
  let rev = Design.revision t.dsg in
  match t.reg_cache with
  | Some (r, regs, slot) when r = rev -> (regs, slot)
  | _ ->
    let regs = Array.of_list (Design.registers t.dsg) in
    (* cell ids are Vec indices, not bounded by the live-cell count *)
    let bound = Array.fold_left (fun acc cid -> max acc (cid + 1)) 1 regs in
    let slot = Array.make bound (-1) in
    Array.iteri (fun i cid -> slot.(cid) <- i) regs;
    t.reg_cache <- Some (rev, regs, slot);
    (regs, slot)

(* ---- delay computation ---- *)

let net_load t nid =
  let dsg = t.dsg in
  let pin_caps =
    List.fold_left
      (fun acc s -> acc +. Design.pin_cap dsg s)
      0.0 (Design.sinks dsg nid)
  in
  let wire_len =
    match Placement.net_box t.pl nid with
    | Some box -> Mbr_geom.Rect.half_perimeter box
    | None -> 0.0
  in
  pin_caps +. (t.cfg.wire_cap *. wire_len)

let nl_open t =
  let nn = Design.n_nets t.dsg in
  if Array.length t.nl_stamp < nn then begin
    t.nl_cache <- Array.make nn 0.0;
    t.nl_stamp <- Array.make nn 0
  end;
  t.nl_epoch <- t.nl_epoch + 1

let net_load_memo t nid =
  if t.nl_stamp.(nid) = t.nl_epoch then t.nl_cache.(nid)
  else begin
    let v = net_load t nid in
    t.nl_cache.(nid) <- v;
    t.nl_stamp.(nid) <- t.nl_epoch;
    v
  end

let wire_delay t src dst =
  let dsg = t.dsg in
  let psrc = Design.pin dsg src and pdst = Design.pin dsg dst in
  match
    ( Placement.location_opt t.pl psrc.Types.p_cell,
      Placement.location_opt t.pl pdst.Types.p_cell )
  with
  | Some _, Some _ ->
    let a = Placement.pin_location t.pl src in
    let b = Placement.pin_location t.pl dst in
    let len = Point.manhattan a b in
    let sink_cap = Design.pin_cap dsg dst in
    t.cfg.wire_res *. len *. ((t.cfg.wire_cap *. len /. 2.0) +. sink_cap)
  | _, _ -> 0.0

(* Underated arc delay; corners scale it multiplicatively (wire factor
   for net arcs, cell factor for comb arcs). *)
let compute_edge_base_delay t e =
  if not e.e_cell then wire_delay t e.e_src e.e_dst
  else begin
    let p = Design.pin t.dsg e.e_dst in
    let c = Design.cell t.dsg p.Types.p_cell in
    match c.Types.c_kind with
    | Types.Comb a ->
      let load =
        match p.Types.p_net with
        | Some nid -> net_load_memo t nid
        | None -> 0.0
      in
      a.Types.intrinsic +. (a.Types.drive_res *. load)
    | Types.Register _ | Types.Clock_root | Types.Clock_gate _
    | Types.Port _ ->
      0.0
  end

let edge_delays t e =
  let nc = Array.length t.corners in
  if e.e_gen = t.delay_gen && Array.length e.e_delay = nc then e.e_delay
  else begin
    let base = compute_edge_base_delay t e in
    let d = if Array.length e.e_delay = nc then e.e_delay else Array.make nc 0.0 in
    if e.e_cell then
      for k = 0 to nc - 1 do
        d.(k) <- base *. t.corners.(k).Corner.cell
      done
    else
      for k = 0 to nc - 1 do
        d.(k) <- base *. t.corners.(k).Corner.wire
      done;
    e.e_delay <- d;
    e.e_gen <- t.delay_gen;
    d
  end

let clock_arrival t cid = skew t cid

let launch_arrival t k pid =
  (* arrival at a startpoint, under corner [k] *)
  let p = Design.pin t.dsg pid in
  let c = Design.cell t.dsg p.Types.p_cell in
  match (c.Types.c_kind, p.Types.p_kind) with
  | Types.Register a, Types.Pin_q _ ->
    let load =
      match p.Types.p_net with Some nid -> net_load_memo t nid | None -> 0.0
    in
    clock_arrival t p.Types.p_cell
    +. (Cell_lib.clk_to_q a.Types.lib_cell ~load *. t.corners.(k).Corner.cell)
  | Types.Port Types.In_port, _ -> t.cfg.input_delay
  | (Types.Register _ | Types.Comb _ | Types.Clock_root | Types.Clock_gate _
    | Types.Port Types.Out_port), _ ->
    0.0

let endpoint_required t k (pid, kind) =
  ignore pid;
  match kind with
  | Ep_reg_d cid ->
    let a = Design.reg_attrs t.dsg cid in
    t.cfg.clock_period +. clock_arrival t cid
    -. (a.Types.lib_cell.Cell_lib.setup *. t.corners.(k).Corner.setup)
  | Ep_out_port -> t.cfg.clock_period -. t.cfg.output_delay

(* ---- levelized propagation plan ----

   A CSR image of the graph with per-corner delays flattened alongside,
   a forward topological level per pin, and per-startpoint/endpoint
   launch/required constants. The plan is a pure function of
   (structure, delays, corners) — keyed on [struct_gen]/[delay_gen]/
   corner count — and serves both the full analysis and every batched
   skew sweep: one build per structural generation, one delay refill
   per numeric generation.

   Propagation over the plan comes in two shapes with one per-pin
   formula (recompute from final predecessors, in the full analysis's
   float op order, so fixpoints are bit-identical — property-tested):

   - frontier passes ([forward_pass]/[backward_pass]) seed the union
     frontier of a move batch (epoch-stamped marks, so a pin enqueues
     once no matter how many moved registers reach it) and process it
     level by level, pushing a pin's successors only when its value
     actually moved;
   - markless full sweeps ([forward_full]/[backward_full]) recompute
     every in-graph pin once in topological order (reverse for
     requireds) with no frontier bookkeeping at all — cheaper than the
     frontier machinery as soon as the frontier would cover most of
     the graph, and the backbone of [analyze]. *)

(* (Re)compute the numeric half of a plan against the current delays:
   per-arc derated delays into [pr_delay]/[su_delay], launch bases
   into [st_base], skewless required terms into [ep_term]. The CSR
   layout itself is keyed by [pl_struct_gen] alone, so a structurally-
   valid plan absorbs an [analyze]'s delay-generation bump with this
   refill - no rebuild. *)
let plan_fill_delays t p =
  Mbr_obs.Trace.with_span ~name:"sta.plan.delays" @@ fun () ->
  nl_open t;
  let nc = p.pl_nc in
  (* pin geometry snapshot: [pin_location] and [pin_cap] walk the
     design records (cell kind match, lib offsets), so resolve each
     in-graph pin once up front instead of once per incident arc — a
     driver with fanout f is otherwise resolved f times *)
  let px = Array.make t.n 0.0 and py = Array.make t.n 0.0 in
  let placed = Array.make t.n false in
  let cap = Array.make t.n 0.0 in
  Mbr_obs.Trace.with_span ~name:"sta.plan.snap" (fun () ->
  for pid = 0 to t.n - 1 do
     if t.in_graph.(pid) then begin
       let pn = Design.pin t.dsg pid in
       match Placement.location_opt t.pl pn.Types.p_cell with
       | Some _ ->
         let l = Placement.pin_location t.pl pid in
         px.(pid) <- l.Point.x;
         py.(pid) <- l.Point.y;
         placed.(pid) <- true;
         cap.(pid) <- Design.pin_cap t.dsg pid
       | None -> ()
     end
   done);
  (* pred side: each arc's derated delays straight into the CSR — same
     float ops (same order) as [edge_delays], but no per-edge memo
     array is allocated (the lazy memo still serves the refresh
     worklist) *)
  (* the dst cell's intrinsic + drive into its output load — shared by
     every cell arc into [pid]; same float ops as the cell branch of
     [compute_edge_base_delay] *)
  let comb_base pid =
    let pn = Design.pin t.dsg pid in
    let c = Design.cell t.dsg pn.Types.p_cell in
    match c.Types.c_kind with
    | Types.Comb a ->
      let load =
        match pn.Types.p_net with
        | Some nid -> net_load_memo t nid
        | None -> 0.0
      in
      a.Types.intrinsic +. (a.Types.drive_res *. load)
    | Types.Register _ | Types.Clock_root | Types.Clock_gate _
    | Types.Port _ ->
      0.0
  in
  (* streamed off the CSR + snapshot arrays: no edge record or cons
      cell is touched, and the per-destination cell base is computed
      once, not once per input pin *)
   for pid = 0 to t.n - 1 do
     let j1 = Array.unsafe_get p.pr_off (pid + 1) in
     let cell_base = ref nan in
     for j = Array.unsafe_get p.pr_off pid to j1 - 1 do
       let is_cell = Bytes.unsafe_get p.pr_cell j = '\001' in
       let base =
         if is_cell then begin
           if Float.is_nan !cell_base then cell_base := comb_base pid;
           !cell_base
         end
         else begin
           let s = Array.unsafe_get p.pr_src j in
           if Array.unsafe_get placed s && Array.unsafe_get placed pid then begin
             (* [wire_delay] verbatim, off the snapshot *)
             let len =
               Float.abs (Array.unsafe_get px s -. Array.unsafe_get px pid)
               +. Float.abs (Array.unsafe_get py s -. Array.unsafe_get py pid)
             in
             t.cfg.wire_res *. len
             *. ((t.cfg.wire_cap *. len /. 2.0) +. Array.unsafe_get cap pid)
           end
           else 0.0
         end
       in
       let b = j * nc in
       if is_cell then
         for k = 0 to nc - 1 do
           p.pr_delay.(b + k) <- base *. t.corners.(k).Corner.cell
         done
       else
         for k = 0 to nc - 1 do
           p.pr_delay.(b + k) <- base *. t.corners.(k).Corner.wire
         done
     done
   done;
  (* succ side: the same numbers gathered through [su_pr], so the
     scattered read happens once per refill and the backward passes
     stream [su_delay] sequentially *)
  let ns = p.su_off.(Array.length p.su_off - 1) in
  for j = 0 to ns - 1 do
    let s = p.su_pr.(j) * nc and d = j * nc in
    for k = 0 to nc - 1 do
      p.su_delay.(d + k) <- p.pr_delay.(s + k)
    done
  done;
  List.iteri
    (fun i pid ->
      let pn = Design.pin t.dsg pid in
      let c = Design.cell t.dsg pn.Types.p_cell in
      match (c.Types.c_kind, pn.Types.p_kind) with
      | Types.Register a, Types.Pin_q _ ->
        p.st_cell.(i) <- pn.Types.p_cell;
        let load =
          match pn.Types.p_net with
          | Some nid -> net_load_memo t nid
          | None -> 0.0
        in
        let cq = Cell_lib.clk_to_q a.Types.lib_cell ~load in
        for k = 0 to nc - 1 do
          p.st_base.((i * nc) + k) <- cq *. t.corners.(k).Corner.cell
        done
      | Types.Port Types.In_port, _ ->
        for k = 0 to nc - 1 do
          p.st_base.((i * nc) + k) <- t.cfg.input_delay
        done
      | _, _ -> ())
    t.startpoints;
  List.iteri
    (fun i (_, kind) ->
      match kind with
      | Ep_reg_d cid ->
        p.ep_cell.(i) <- cid;
        let a = Design.reg_attrs t.dsg cid in
        let setup = a.Types.lib_cell.Cell_lib.setup in
        for k = 0 to nc - 1 do
          p.ep_term.((i * nc) + k) <- setup *. t.corners.(k).Corner.setup
        done
      | Ep_out_port ->
        for k = 0 to nc - 1 do
          p.ep_term.((i * nc) + k) <- t.cfg.output_delay
        done)
    t.endpoints

let build_plan t =
  Mbr_obs.Trace.with_span ~name:"sta.plan.build"
    ~args:[ ("n_pins", Mbr_obs.Trace.Int t.n) ]
  @@ fun () ->
  let n = t.n in
  let nc = Array.length t.corners in
  let pr_off = Array.make (n + 1) 0 and su_off = Array.make (n + 1) 0 in
  for pid = 0 to n - 1 do
    pr_off.(pid + 1) <- pr_off.(pid) + List.length t.preds.(pid);
    su_off.(pid + 1) <- su_off.(pid) + List.length t.succs.(pid)
  done;
  let ne = pr_off.(n) in
  let pr_src = Array.make (max ne 1) 0 in
  let pr_cell = Bytes.make (max ne 1) '\000' in
  let pr_delay = Array.make (max (ne * nc) 1) 0.0 in
  let su_dst = Array.make (max su_off.(n) 1) 0 in
  let su_delay = Array.make (max (su_off.(n) * nc) 1) 0.0 in
  let su_pr = Array.make (max su_off.(n) 1) 0 in
  (* an arc is one shared record on both adjacency lists, and the pred
     CSR mirrors [t.preds] list order — so the arc's pred entry is its
     physical position in [t.preds.(e_dst)], found by a short scan
     (in-degrees are small: one net driver or a handful of cell ins) *)
  let pr_entry_of e =
    let rec find k = function
      | e' :: tl -> if e' == e then k else find (k + 1) tl
      | [] -> assert false
    in
    find pr_off.(e.e_dst) t.preds.(e.e_dst)
  in
  for pid = 0 to n - 1 do
    let j = ref pr_off.(pid) in
    List.iter
      (fun e ->
        pr_src.(!j) <- e.e_src;
        if e.e_cell then Bytes.unsafe_set pr_cell !j '\001';
        incr j)
      t.preds.(pid);
    let j = ref su_off.(pid) in
    List.iter
      (fun e ->
        su_dst.(!j) <- e.e_dst;
        su_pr.(!j) <- pr_entry_of e;
        incr j)
      t.succs.(pid)
  done;
  let level = Array.make n (-1) in
  let n_levels = ref 0 in
  Array.iter
    (fun pid ->
      let l =
        List.fold_left
          (fun acc e -> max acc (level.(e.e_src) + 1))
          0 t.preds.(pid)
      in
      level.(pid) <- l;
      if l + 1 > !n_levels then n_levels := l + 1)
    t.topo;
  let st_slot = Array.make n (-1) in
  let n_st = List.length t.startpoints in
  let st_cell = Array.make (max n_st 1) (-1) in
  let st_base = Array.make (max (n_st * nc) 1) 0.0 in
  List.iteri (fun i pid -> st_slot.(pid) <- i) t.startpoints;
  let ep_slot = Array.make n (-1) in
  let n_ep = List.length t.endpoints in
  let ep_cell = Array.make (max n_ep 1) (-1) in
  let ep_term = Array.make (max (n_ep * nc) 1) 0.0 in
  List.iteri (fun i (pid, _) -> ep_slot.(pid) <- i) t.endpoints;
  let p =
    {
      pl_struct_gen = t.struct_gen;
      pl_delay_gen = t.delay_gen;
      pl_nc = nc;
      pl_level = level;
      pl_n_levels = !n_levels;
      pr_off;
      pr_src;
      pr_cell;
      pr_delay;
      su_off;
      su_dst;
      su_delay;
      su_pr;
      st_slot;
      st_cell;
      st_base;
      ep_slot;
      ep_cell;
      ep_term;
      pl_scratch = Array.make (max nc 1) None;
    }
  in
  plan_fill_delays t p;
  p

let ensure_plan t =
  let nc = Array.length t.corners in
  match t.plan with
  | Some p when p.pl_struct_gen = t.struct_gen && p.pl_nc = nc ->
    if p.pl_delay_gen <> t.delay_gen then begin
      plan_fill_delays t p;
      p.pl_delay_gen <- t.delay_gen
    end;
    p
  | Some _ | None ->
    let p = build_plan t in
    t.plan <- Some p;
    p

let plan_scratch_for p slot =
  match p.pl_scratch.(slot) with
  | Some s -> s
  | None ->
    let n = Array.length p.pl_level in
    let s =
      {
        ps_mark = Array.make (max n 1) 0;
        ps_next = Array.make (max n 1) (-1);
        ps_head = Array.make (max p.pl_n_levels 1) (-1);
        ps_tmp = Array.make (max p.pl_nc 1) 0.0;
        ps_epoch = 0;
      }
    in
    p.pl_scratch.(slot) <- Some s;
    s

(* One levelized forward pass over corner range [k0..k1]. The cancel
   token, when given, is polled once per level so a deadline or budget
   trips promptly — but the pass always runs to completion (a batch is
   atomic; callers like [Skew.optimize] act on the token at their own
   sweep boundary), so a cancelled batch leaves exactly the same planes
   as an uncancelled one. Returns (pins processed, non-empty levels). *)
let forward_pass t p scr ~k0 ~k1 ~seeds ~changed ~cancel =
  let nc = p.pl_nc in
  scr.ps_epoch <- scr.ps_epoch + 1;
  let epoch = scr.ps_epoch in
  let mark = scr.ps_mark and next = scr.ps_next and head = scr.ps_head in
  let lmin = ref p.pl_n_levels and lmax = ref (-1) in
  let push pid =
    if Array.unsafe_get mark pid <> epoch then begin
      Array.unsafe_set mark pid epoch;
      let l = Array.unsafe_get p.pl_level pid in
      Array.unsafe_set next pid (Array.unsafe_get head l);
      Array.unsafe_set head l pid;
      if l < !lmin then lmin := l;
      if l > !lmax then lmax := l
    end
  in
  List.iter (fun pid -> if t.topo_pos.(pid) >= 0 then push pid) seeds;
  let tmp = scr.ps_tmp in
  let arr = t.arrival in
  let processed = ref 0 and levels = ref 0 in
  let l = ref !lmin in
  while !l <= !lmax do
    (match cancel with
    | Some c -> ignore (Mbr_util.Cancel.check c)
    | None -> ());
    let pid = ref head.(!l) in
    if !pid >= 0 then incr levels;
    while !pid >= 0 do
      let q = !pid in
      incr processed;
      (* recompute arrival over [k0..k1] from final predecessors *)
      let sl = Array.unsafe_get p.st_slot q in
      if sl >= 0 then begin
        let cid = Array.unsafe_get p.st_cell sl in
        if cid >= 0 then begin
          let sk = skew t cid in
          for k = k0 to k1 do
            Array.unsafe_set tmp k (sk +. Array.unsafe_get p.st_base ((sl * nc) + k))
          done
        end
        else
          for k = k0 to k1 do
            Array.unsafe_set tmp k (Array.unsafe_get p.st_base ((sl * nc) + k))
          done
      end
      else
        for k = k0 to k1 do
          Array.unsafe_set tmp k neg_infinity
        done;
      for j = Array.unsafe_get p.pr_off q to Array.unsafe_get p.pr_off (q + 1) - 1 do
        let sb = Array.unsafe_get p.pr_src j * nc in
        let b = j * nc in
        for k = k0 to k1 do
          let a =
            pget arr (sb + k) +. Array.unsafe_get p.pr_delay (b + k)
          in
          if a > Array.unsafe_get tmp k then Array.unsafe_set tmp k a
        done
      done;
      let moved = ref false in
      let qb = q * nc in
      for k = k0 to k1 do
        let v = Array.unsafe_get tmp k in
        if v <> pget arr (qb + k) then begin
          moved := true;
          pset arr (qb + k) v
        end
      done;
      if !moved then begin
        (match changed with Some v -> ivec_push v q | None -> ());
        for j = Array.unsafe_get p.su_off q to Array.unsafe_get p.su_off (q + 1) - 1 do
          push (Array.unsafe_get p.su_dst j)
        done
      end;
      pid := Array.unsafe_get next q
    done;
    head.(!l) <- -1;
    incr l
  done;
  (!processed, !levels)

(* Backward mirror: seeds are D pins, levels run high to low (a pin's
   required depends only on strictly higher levels), pushes go to
   predecessors. *)
let backward_pass t p scr ~k0 ~k1 ~seeds ~changed ~cancel =
  let nc = p.pl_nc in
  scr.ps_epoch <- scr.ps_epoch + 1;
  let epoch = scr.ps_epoch in
  let mark = scr.ps_mark and next = scr.ps_next and head = scr.ps_head in
  let lmin = ref p.pl_n_levels and lmax = ref (-1) in
  let push pid =
    if Array.unsafe_get mark pid <> epoch then begin
      Array.unsafe_set mark pid epoch;
      let l = Array.unsafe_get p.pl_level pid in
      Array.unsafe_set next pid (Array.unsafe_get head l);
      Array.unsafe_set head l pid;
      if l < !lmin then lmin := l;
      if l > !lmax then lmax := l
    end
  in
  List.iter (fun pid -> if t.topo_pos.(pid) >= 0 then push pid) seeds;
  let tmp = scr.ps_tmp in
  let req = t.required in
  let period = t.cfg.clock_period in
  let processed = ref 0 and levels = ref 0 in
  let l = ref !lmax in
  while !l >= !lmin do
    (match cancel with
    | Some c -> ignore (Mbr_util.Cancel.check c)
    | None -> ());
    let pid = ref head.(!l) in
    if !pid >= 0 then incr levels;
    while !pid >= 0 do
      let q = !pid in
      incr processed;
      let sl = Array.unsafe_get p.ep_slot q in
      if sl >= 0 then begin
        let cid = Array.unsafe_get p.ep_cell sl in
        if cid >= 0 then begin
          let sk = skew t cid in
          for k = k0 to k1 do
            Array.unsafe_set tmp k (period +. sk -. Array.unsafe_get p.ep_term ((sl * nc) + k))
          done
        end
        else
          for k = k0 to k1 do
            Array.unsafe_set tmp k (period -. Array.unsafe_get p.ep_term ((sl * nc) + k))
          done
      end
      else
        for k = k0 to k1 do
          Array.unsafe_set tmp k infinity
        done;
      for j = Array.unsafe_get p.su_off q to Array.unsafe_get p.su_off (q + 1) - 1 do
        let db = Array.unsafe_get p.su_dst j * nc in
        let b = j * nc in
        for k = k0 to k1 do
          let r =
            pget req (db + k) -. Array.unsafe_get p.su_delay (b + k)
          in
          if r < Array.unsafe_get tmp k then Array.unsafe_set tmp k r
        done
      done;
      let moved = ref false in
      let qb = q * nc in
      for k = k0 to k1 do
        let v = Array.unsafe_get tmp k in
        if v <> pget req (qb + k) then begin
          moved := true;
          pset req (qb + k) v
        end
      done;
      if !moved then begin
        (match changed with Some v -> ivec_push v q | None -> ());
        for j = Array.unsafe_get p.pr_off q to Array.unsafe_get p.pr_off (q + 1) - 1 do
          push (Array.unsafe_get p.pr_src j)
        done
      end;
      pid := Array.unsafe_get next q
    done;
    head.(!l) <- -1;
    decr l
  done;
  (!processed, !levels)

(* Markless full sweep: the frontier pass's per-pin recompute applied
   to every in-graph pin once, in topological order — a pin whose
   inputs did not move recomputes to its stored value bit-for-bit, so
   the fixpoint AND the changed-pin set match the frontier pass
   exactly. Cancellation is polled every 4096 pins instead of per
   level. Returns the processed-pin count. *)
let forward_full t p scr ~k0 ~k1 ~changed ~cancel =
  let nc = p.pl_nc in
  let tmp = scr.ps_tmp in
  let arr = t.arrival in
  let topo = t.topo in
  let m = Array.length topo in
  for i = 0 to m - 1 do
    (match cancel with
    | Some c when i land 4095 = 0 -> ignore (Mbr_util.Cancel.check c)
    | Some _ | None -> ());
    let q = Array.unsafe_get topo i in
    let sl = Array.unsafe_get p.st_slot q in
    if sl >= 0 then begin
      let cid = Array.unsafe_get p.st_cell sl in
      if cid >= 0 then begin
        let sk = skew t cid in
        for k = k0 to k1 do
          Array.unsafe_set tmp k (sk +. Array.unsafe_get p.st_base ((sl * nc) + k))
        done
      end
      else
        for k = k0 to k1 do
          Array.unsafe_set tmp k (Array.unsafe_get p.st_base ((sl * nc) + k))
        done
    end
    else
      for k = k0 to k1 do
        Array.unsafe_set tmp k neg_infinity
      done;
    for j = Array.unsafe_get p.pr_off q to Array.unsafe_get p.pr_off (q + 1) - 1 do
      let sb = Array.unsafe_get p.pr_src j * nc in
      let b = j * nc in
      for k = k0 to k1 do
        let a =
          pget arr (sb + k) +. Array.unsafe_get p.pr_delay (b + k)
        in
        if a > Array.unsafe_get tmp k then Array.unsafe_set tmp k a
      done
    done;
    let moved = ref false in
    let qb = q * nc in
    for k = k0 to k1 do
      let v = Array.unsafe_get tmp k in
      if v <> pget arr (qb + k) then begin
        moved := true;
        pset arr (qb + k) v
      end
    done;
    if !moved then
      match changed with Some v -> ivec_push v q | None -> ()
  done;
  m

let backward_full t p scr ~k0 ~k1 ~changed ~cancel =
  let nc = p.pl_nc in
  let tmp = scr.ps_tmp in
  let req = t.required in
  let period = t.cfg.clock_period in
  let topo = t.topo in
  let m = Array.length topo in
  for i = m - 1 downto 0 do
    (match cancel with
    | Some c when i land 4095 = 0 -> ignore (Mbr_util.Cancel.check c)
    | Some _ | None -> ());
    let q = Array.unsafe_get topo i in
    let sl = Array.unsafe_get p.ep_slot q in
    if sl >= 0 then begin
      let cid = Array.unsafe_get p.ep_cell sl in
      if cid >= 0 then begin
        let sk = skew t cid in
        for k = k0 to k1 do
          Array.unsafe_set tmp k (period +. sk -. Array.unsafe_get p.ep_term ((sl * nc) + k))
        done
      end
      else
        for k = k0 to k1 do
          Array.unsafe_set tmp k (period -. Array.unsafe_get p.ep_term ((sl * nc) + k))
        done
    end
    else
      for k = k0 to k1 do
        Array.unsafe_set tmp k infinity
      done;
    for j = Array.unsafe_get p.su_off q to Array.unsafe_get p.su_off (q + 1) - 1 do
      let db = Array.unsafe_get p.su_dst j * nc in
      let b = j * nc in
      for k = k0 to k1 do
        let r =
          pget req (db + k) -. Array.unsafe_get p.su_delay (b + k)
        in
        if r < Array.unsafe_get tmp k then Array.unsafe_set tmp k r
      done
    done;
    let moved = ref false in
    let qb = q * nc in
    for k = k0 to k1 do
      let v = Array.unsafe_get tmp k in
      if v <> pget req (qb + k) then begin
        moved := true;
        pset req (qb + k) v
      end
    done;
    if !moved then
      match changed with Some v -> ivec_push v q | None -> ()
  done;
  m

(* Mark-skip sweeps: stream the whole topo order like the full sweeps,
   but recompute a pin only when it is a seed or a predecessor actually
   moved — one epoch-stamped mark per pin, no per-level lists, so the
   CSR walk stays sequential and a quiet pin costs one array read.
   Skipping is sound because an unmarked pin would recompute to its
   stored value bit-for-bit (same final predecessors, same delays), so
   the planes AND the changed-pin set match the markless full sweep
   exactly. This is the batch shape for big move batches: frontier
   level lists jump around the CSR, and the markless full sweep pays
   the recompute for every quiet pin. *)
let forward_scan t p scr ~k0 ~k1 ~seeds ~changed ~cancel =
  let nc = p.pl_nc in
  scr.ps_epoch <- scr.ps_epoch + 1;
  let epoch = scr.ps_epoch in
  let mark = scr.ps_mark in
  List.iter
    (fun pid -> if t.topo_pos.(pid) >= 0 then Array.unsafe_set mark pid epoch)
    seeds;
  let tmp = scr.ps_tmp in
  let arr = t.arrival in
  let topo = t.topo in
  let m = Array.length topo in
  let processed = ref 0 in
  for i = 0 to m - 1 do
    (match cancel with
    | Some c when i land 4095 = 0 -> ignore (Mbr_util.Cancel.check c)
    | Some _ | None -> ());
    let q = Array.unsafe_get topo i in
    if Array.unsafe_get mark q = epoch then begin
      incr processed;
      let sl = Array.unsafe_get p.st_slot q in
      if sl >= 0 then begin
        let cid = Array.unsafe_get p.st_cell sl in
        if cid >= 0 then begin
          let sk = skew t cid in
          for k = k0 to k1 do
            Array.unsafe_set tmp k (sk +. Array.unsafe_get p.st_base ((sl * nc) + k))
          done
        end
        else
          for k = k0 to k1 do
            Array.unsafe_set tmp k (Array.unsafe_get p.st_base ((sl * nc) + k))
          done
      end
      else
        for k = k0 to k1 do
          Array.unsafe_set tmp k neg_infinity
        done;
      for j = Array.unsafe_get p.pr_off q to Array.unsafe_get p.pr_off (q + 1) - 1 do
        let sb = Array.unsafe_get p.pr_src j * nc in
        let b = j * nc in
        for k = k0 to k1 do
          let a =
            pget arr (sb + k) +. Array.unsafe_get p.pr_delay (b + k)
          in
          if a > Array.unsafe_get tmp k then Array.unsafe_set tmp k a
        done
      done;
      let moved = ref false in
      let qb = q * nc in
      for k = k0 to k1 do
        let v = Array.unsafe_get tmp k in
        if v <> pget arr (qb + k) then begin
          moved := true;
          pset arr (qb + k) v
        end
      done;
      if !moved then begin
        (match changed with Some v -> ivec_push v q | None -> ());
        for j = Array.unsafe_get p.su_off q to Array.unsafe_get p.su_off (q + 1) - 1 do
          Array.unsafe_set mark (Array.unsafe_get p.su_dst j) epoch
        done
      end
    end
  done;
  !processed

let backward_scan t p scr ~k0 ~k1 ~seeds ~changed ~cancel =
  let nc = p.pl_nc in
  scr.ps_epoch <- scr.ps_epoch + 1;
  let epoch = scr.ps_epoch in
  let mark = scr.ps_mark in
  List.iter
    (fun pid -> if t.topo_pos.(pid) >= 0 then Array.unsafe_set mark pid epoch)
    seeds;
  let tmp = scr.ps_tmp in
  let req = t.required in
  let period = t.cfg.clock_period in
  let topo = t.topo in
  let m = Array.length topo in
  let processed = ref 0 in
  for i = m - 1 downto 0 do
    (match cancel with
    | Some c when i land 4095 = 0 -> ignore (Mbr_util.Cancel.check c)
    | Some _ | None -> ());
    let q = Array.unsafe_get topo i in
    if Array.unsafe_get mark q = epoch then begin
      incr processed;
      let sl = Array.unsafe_get p.ep_slot q in
      if sl >= 0 then begin
        let cid = Array.unsafe_get p.ep_cell sl in
        if cid >= 0 then begin
          let sk = skew t cid in
          for k = k0 to k1 do
            Array.unsafe_set tmp k (period +. sk -. Array.unsafe_get p.ep_term ((sl * nc) + k))
          done
        end
        else
          for k = k0 to k1 do
            Array.unsafe_set tmp k (period -. Array.unsafe_get p.ep_term ((sl * nc) + k))
          done
      end
      else
        for k = k0 to k1 do
          Array.unsafe_set tmp k infinity
        done;
      for j = Array.unsafe_get p.su_off q to Array.unsafe_get p.su_off (q + 1) - 1 do
        let db = Array.unsafe_get p.su_dst j * nc in
        let b = j * nc in
        for k = k0 to k1 do
          let r =
            pget req (db + k) -. Array.unsafe_get p.su_delay (b + k)
          in
          if r < Array.unsafe_get tmp k then Array.unsafe_set tmp k r
        done
      done;
      let moved = ref false in
      let qb = q * nc in
      for k = k0 to k1 do
        let v = Array.unsafe_get tmp k in
        if v <> pget req (qb + k) then begin
          moved := true;
          pset req (qb + k) v
        end
      done;
      if !moved then begin
        (match changed with Some v -> ivec_push v q | None -> ());
        for j = Array.unsafe_get p.pr_off q to Array.unsafe_get p.pr_off (q + 1) - 1 do
          Array.unsafe_set mark (Array.unsafe_get p.pr_src j) epoch
        done
      end
    end
  done;
  !processed

(* A full numeric pass: every delay recomputed against the current
   placement (pending moves are absorbed; delay refill when the plan's
   structure is still valid, full plan build otherwise), every
   arrival/required recomputed by the markless full sweeps — one
   shared plan serves this analysis and every subsequent skew sweep.
   Pending *structural* design edits are not absorbed: the graph
   arrays are untouched here, so [dsg_cursor] stays where it is and a
   later {!refresh} repairs the structure. *)
let analyze t =
  Mbr_obs.Trace.with_span ~name:"sta.analyze"
    ~args:[ ("n_pins", Mbr_obs.Trace.Int t.n) ]
  @@ fun () ->
  t.delay_gen <- t.delay_gen + 1;
  let nc = Array.length t.corners in
  let p = ensure_plan t in
  Bigarray.Array1.fill t.arrival neg_infinity;
  Bigarray.Array1.fill t.required infinity;
  let scr = plan_scratch_for p 0 in
  ignore (forward_full t p scr ~k0:0 ~k1:(nc - 1) ~changed:None ~cancel:None);
  ignore (backward_full t p scr ~k0:0 ~k1:(nc - 1) ~changed:None ~cancel:None);
  t.pl_cursor <- Placement.revision t.pl;
  t.analyzed <- true

let ensure t = if not t.analyzed then analyze t

(* ---- incremental refresh ---- *)

exception Bail

let grow t n' =
  if n' > t.n then begin
    let grow_arr a def =
      let b = Array.make n' def in
      Array.blit a 0 b 0 t.n;
      b
    in
    t.in_graph <- grow_arr t.in_graph false;
    t.succs <- grow_arr t.succs [];
    t.preds <- grow_arr t.preds [];
    t.topo_pos <- grow_arr t.topo_pos (-1);
    t.is_start <- grow_arr t.is_start false;
    t.ep_of <- grow_arr t.ep_of None;
    (* the corner count is unchanged, so the interleaved prefix of the
       old plane is position-identical in the new one — one blit *)
    let nc = Array.length t.corners in
    let grow_plane pl def =
      let b = plane_make (n' * nc) def in
      if t.n > 0 then
        Bigarray.Array1.blit
          (Bigarray.Array1.sub pl 0 (t.n * nc))
          (Bigarray.Array1.sub b 0 (t.n * nc));
      b
    in
    t.arrival <- grow_plane t.arrival neg_infinity;
    t.required <- grow_plane t.required infinity;
    t.plan <- None;
    t.struct_gen <- t.struct_gen + 1;
    t.n <- n'
  end

(* Telemetry: the incremental engine's health is "how often does
   refresh stay incremental, and how much does it touch when it does".
   [sta.dirty_pins] accumulates the seed set of each incremental
   splice; [sta.rebuild_fallbacks] counts Bail escapes to the O(n)
   path. [sta.corners] accumulates the corner count of every engine
   build / corner-set swap. All no-ops while [Mbr_obs] is disabled. *)
let m_refreshes = Mbr_obs.Metrics.counter "sta.refreshes"

let m_rebuild_fallbacks = Mbr_obs.Metrics.counter "sta.rebuild_fallbacks"

let m_dirty_pins = Mbr_obs.Metrics.counter "sta.dirty_pins"

(* Full fallback: recompute the graph from scratch, keep skews, rerun a
   complete analyze. Any partial splicing a bailed refresh left behind
   is discarded wholesale because every array is replaced. *)
let rebuild t =
  let g =
    Mbr_obs.Trace.with_span ~name:"sta.graph" (fun () -> compute_graph t.dsg)
  in
  let nc = Array.length t.corners in
  t.n <- g.g_n;
  t.in_graph <- g.g_in_graph;
  t.succs <- g.g_succs;
  t.preds <- g.g_preds;
  t.topo <- g.g_topo;
  t.topo_pos <- g.g_topo_pos;
  t.is_start <- g.g_is_start;
  t.ep_of <- g.g_ep_of;
  t.startpoints <- g.g_startpoints;
  t.endpoints <- g.g_endpoints;
  (* [compute_graph]'s table is fresh per call — own it directly *)
  t.net_arcs <- g.g_net_arcs;
  t.arrival <- plane_make (g.g_n * nc) neg_infinity;
  t.required <- plane_make (g.g_n * nc) infinity;
  t.plan <- None;
  t.struct_gen <- t.struct_gen + 1;
  t.dsg_cursor <- Design.revision t.dsg;
  t.n_full_builds <- t.n_full_builds + 1;
  analyze t

(* Recompute one pin's arrivals (all corners) from its final
   predecessors into [tmp]; true if any corner differs from the stored
   value. Shared by refresh and skew propagation so the fixpoint is the
   full analysis's, corner by corner. *)
let recompute_arrival t tmp pid =
  let nc = Array.length t.corners in
  for k = 0 to nc - 1 do
    tmp.(k) <- (if t.is_start.(pid) then launch_arrival t k pid else neg_infinity)
  done;
  List.iter
    (fun e ->
      if pget t.arrival (e.e_src * nc) > neg_infinity then begin
        let d = edge_delays t e in
        for k = 0 to nc - 1 do
          let a = pget t.arrival ((e.e_src * nc) + k) +. d.(k) in
          if a > tmp.(k) then tmp.(k) <- a
        done
      end)
    t.preds.(pid);
  let changed = ref false in
  for k = 0 to nc - 1 do
    if tmp.(k) <> pget t.arrival ((pid * nc) + k) then changed := true
  done;
  !changed

let recompute_required t tmp pid =
  let nc = Array.length t.corners in
  (match t.ep_of.(pid) with
  | Some kind ->
    for k = 0 to nc - 1 do
      tmp.(k) <- endpoint_required t k (pid, kind)
    done
  | None -> Array.fill tmp 0 nc infinity);
  List.iter
    (fun e ->
      if pget t.required (e.e_dst * nc) < infinity then begin
        let d = edge_delays t e in
        for k = 0 to nc - 1 do
          let r = pget t.required ((e.e_dst * nc) + k) -. d.(k) in
          if r < tmp.(k) then tmp.(k) <- r
        done
      end)
    t.succs.(pid);
  let changed = ref false in
  for k = 0 to nc - 1 do
    if tmp.(k) <> pget t.required ((pid * nc) + k) then changed := true
  done;
  !changed

let commit_arrival t tmp pid =
  let nc = Array.length t.corners in
  for k = 0 to nc - 1 do
    pset t.arrival ((pid * nc) + k) tmp.(k)
  done

let commit_required t tmp pid =
  let nc = Array.length t.corners in
  for k = 0 to nc - 1 do
    pset t.required ((pid * nc) + k) tmp.(k)
  done

(* Splice the edits logged since the cursors into the existing graph and
   re-propagate only what they touched. The structural part handles
   register/port pins exactly: those are pure sources or pure sinks of
   the data graph (no timing arc crosses a register), so composition
   edits never perturb the relative order of surviving pins and the
   topological order can be repaired by prepending new sources and
   appending new sinks. Anything that could reorder the interior — a
   combinational cell appearing, or a new arc that contradicts the
   current order — bails to {!rebuild}, as does an edit batch whose
   touched-pin estimate exceeds [rebuild_threshold] of the graph (a
   vanishing comb cell is fine: a subgraph of a DAG keeps the DAG's
   topological order). The splice's numeric repair rides the same
   mark-skip scans as the skew sweeps and its status bookkeeping is
   batched, so what remains over the batched full build is the per-net
   arc surgery; the break-even now sits above half the graph. The 0.6
   default keeps composition-scale batches — a merge pass replacing a
   third of the registers dirties ~half the pins — on the splice, and
   sends only wholesale rewrites to {!rebuild}. *)
let refresh ?(rebuild_threshold = 0.6) t =
  let dsg_rev = Design.revision t.dsg in
  let pl_rev = Placement.revision t.pl in
  if not t.analyzed then begin
    if dsg_rev <> t.dsg_cursor then rebuild t else analyze t
  end
  else if dsg_rev = t.dsg_cursor && pl_rev = t.pl_cursor then ()
  else
    Mbr_obs.Trace.with_span ~name:"sta.refresh"
      ~args:[ ("n_pins", Mbr_obs.Trace.Int t.n) ]
    @@ fun () ->
    try
      let edits = Design.edits_since t.dsg t.dsg_cursor in
      let moved = Placement.moves_since t.pl t.pl_cursor in
      let dirty_nets = Hashtbl.create 64 in
      let added = ref [] and removed = ref [] and retyped = ref [] in
      List.iter
        (function
          | Design.Net_changed nid -> Hashtbl.replace dirty_nets nid ()
          | Design.Cell_added cid -> added := cid :: !added
          | Design.Cell_removed cid -> removed := cid :: !removed
          | Design.Cell_retyped cid -> retyped := cid :: !retyped)
        edits;
      (* A comb cell *appearing* can reshape the interior of the
         topological order — punt. A comb cell vanishing cannot: a
         subgraph of a DAG keeps the DAG's topological order, so
         removals only drop arcs and ride the generic removed-cell
         path below. *)
      let is_comb cid =
        match (Design.cell t.dsg cid).Types.c_kind with
        | Types.Comb _ -> true
        | _ -> false
      in
      if List.exists is_comb !added then raise Bail;
      let nets_of_cell cid =
        List.filter_map
          (fun pid -> (Design.pin t.dsg pid).Types.p_net)
          (Design.pins_of t.dsg cid)
      in
      (* Moved cells change pin positions; retyped registers change pin
         offsets, caps and drive. Either way every incident net's arc
         delays and load are stale. *)
      List.iter
        (fun cid ->
          List.iter (fun nid -> Hashtbl.replace dirty_nets nid ()) (nets_of_cell cid))
        moved;
      List.iter
        (fun cid ->
          List.iter (fun nid -> Hashtbl.replace dirty_nets nid ()) (nets_of_cell cid))
        !retyped;
      let estimate =
        Hashtbl.fold
          (fun nid () acc ->
            acc + List.length (Design.net t.dsg nid).Types.n_pins)
          dirty_nets 0
        + List.fold_left
            (fun acc cid -> acc + List.length (Design.pins_of t.dsg cid))
            0
            (!added @ !removed @ !retyped)
        + List.length moved
      in
      if float_of_int estimate > rebuild_threshold *. float_of_int (max t.n 1)
      then raise Bail;
      grow t (Design.n_pins t.dsg);
      (* design + placement are frozen for the rest of the splice: one
         net-load memo epoch covers every respliced arc and relaunched
         startpoint *)
      nl_open t;
      let nc = Array.length t.corners in
      let fwd_dirty = Array.make t.n false in
      let bwd_dirty = Array.make t.n false in
      let mark_fwd pid = fwd_dirty.(pid) <- true in
      let mark_bwd pid = bwd_dirty.(pid) <- true in
      Mbr_obs.Trace.with_span ~name:"sta.splice" (fun () ->
      (* 1. removed cells leave the graph *)
      List.iter
        (fun cid ->
          List.iter
            (fun pid ->
              if t.in_graph.(pid) then begin
                List.iter
                  (fun e ->
                    t.preds.(e.e_dst) <-
                      List.filter (fun e' -> e'.e_src <> pid) t.preds.(e.e_dst);
                    mark_fwd e.e_dst)
                  t.succs.(pid);
                List.iter
                  (fun e ->
                    t.succs.(e.e_src) <-
                      List.filter (fun e' -> e'.e_dst <> pid) t.succs.(e.e_src);
                    mark_bwd e.e_src)
                  t.preds.(pid);
                t.succs.(pid) <- [];
                t.preds.(pid) <- [];
                t.in_graph.(pid) <- false;
                t.is_start.(pid) <- false;
                t.ep_of.(pid) <- None;
                t.topo_pos.(pid) <- -1;
                for k = 0 to nc - 1 do
                  pset t.arrival ((pid * nc) + k) neg_infinity;
                  pset t.required ((pid * nc) + k) infinity
                done
              end)
            (Design.pins_of t.dsg cid))
        !removed;
      let sts_dirty = ref (!removed <> []) in
      (* 2. added cells join the graph; their start/endpoint status and
         arcs arrive through the Net_changed edits their wiring logged *)
      let new_pins = ref [] in
      List.iter
        (fun cid ->
          let c = Design.cell t.dsg cid in
          if not c.Types.c_dead then
            List.iter
              (fun pid ->
                if data_pin t.dsg pid && not t.in_graph.(pid) then begin
                  t.in_graph.(pid) <- true;
                  new_pins := pid :: !new_pins
                end)
              c.Types.c_pins)
        !added;
      (* 3. retyped registers: clk->q and setup changed *)
      List.iter
        (fun cid ->
          List.iter
            (fun pid ->
              if t.in_graph.(pid) then begin
                match (Design.pin t.dsg pid).Types.p_kind with
                | Types.Pin_q _ -> mark_fwd pid
                | Types.Pin_d _ -> mark_bwd pid
                | _ -> ()
              end)
            (Design.pins_of t.dsg cid))
        !retyped;
      (* 4. resplice every dirty net *)
      (* status flips only touch the flag arrays here; the start/end
         *lists* are rebuilt once after the splice (the old per-flip
         [List.filter] over a 10k+-long startpoint list made bulk
         splices quadratic) *)
      let check_status pid =
        let should_start, should_end = pin_start_end t.dsg pid in
        if should_start <> t.is_start.(pid) then begin
          t.is_start.(pid) <- should_start;
          sts_dirty := true;
          mark_fwd pid
        end;
        match (should_end, t.ep_of.(pid)) with
        | None, None -> ()
        | Some k, Some k' when k = k' -> ()
        | _ ->
          t.ep_of.(pid) <- should_end;
          sts_dirty := true;
          mark_bwd pid
      in
      Hashtbl.iter
        (fun nid () ->
          let old =
            match Hashtbl.find_opt t.net_arcs nid with Some l -> l | None -> []
          in
          List.iter
            (fun (d, s) ->
              t.succs.(d) <- List.filter (fun e -> e.e_dst <> s) t.succs.(d);
              t.preds.(s) <- List.filter (fun e -> e.e_src <> d) t.preds.(s);
              if t.in_graph.(s) then mark_fwd s;
              if t.in_graph.(d) then mark_bwd d)
            old;
          let pairs = net_arc_pairs t.dsg t.in_graph nid in
          List.iter
            (fun (d, s) ->
              if
                t.topo_pos.(d) >= 0 && t.topo_pos.(s) >= 0
                && t.topo_pos.(d) > t.topo_pos.(s)
              then raise Bail;
              let e = mk_edge ~cell:false d s in
              t.succs.(d) <- e :: t.succs.(d);
              t.preds.(s) <- e :: t.preds.(s);
              mark_fwd s;
              mark_bwd d)
            pairs;
          if pairs = [] then Hashtbl.remove t.net_arcs nid
          else Hashtbl.replace t.net_arcs nid pairs;
          (* the driver's output load changed: comb delay through it and
             a startpoint's launch both depend on it *)
          (match Design.driver t.dsg nid with
          | Some d when t.in_graph.(d) ->
            if t.is_start.(d) then mark_fwd d;
            List.iter
              (fun e ->
                if e.e_cell then begin
                  e.e_gen <- -1;
                  mark_fwd d;
                  mark_bwd e.e_src
                end)
              t.preds.(d)
          | Some _ | None -> ());
          (* start/endpoint status follows connectivity *)
          List.iter
            (fun pid -> if t.in_graph.(pid) then check_status pid)
            (Design.net t.dsg nid).Types.n_pins;
          List.iter
            (fun (d, s) ->
              if t.in_graph.(d) then check_status d;
              if t.in_graph.(s) then check_status s)
            old)
        dirty_nets;
      (* 5. local topo repair: new pins are register/port pins, i.e.
         pure sources or pure sinks of the data graph *)
      if !new_pins <> [] then begin
        List.iter
          (fun pid ->
            if t.preds.(pid) <> [] && t.succs.(pid) <> [] then raise Bail)
          !new_pins;
        let sources, sinks =
          List.partition (fun pid -> t.preds.(pid) = []) !new_pins
        in
        let kept =
          List.filter (fun pid -> t.in_graph.(pid)) (Array.to_list t.topo)
        in
        t.topo <- Array.of_list (sources @ kept @ sinks);
        let tp = Array.make t.n (-1) in
        Array.iteri (fun idx pid -> tp.(pid) <- idx) t.topo;
        t.topo_pos <- tp
      end;
      (* 5b. start/endpoint lists, rebuilt from the flag arrays in one
         pass over the pins *)
      if !sts_dirty then begin
        let sts = ref [] and eps = ref [] in
        for pid = t.n - 1 downto 0 do
          if t.is_start.(pid) then sts := pid :: !sts;
          match t.ep_of.(pid) with
          | Some k -> eps := (pid, k) :: !eps
          | None -> ()
        done;
        t.startpoints <- !sts;
        t.endpoints <- !eps
      end);
      (* 6. numeric repair. The splice reshaped the arc lists, so any
         cached propagation plan is stale either way; the delays it
         would serve are also stale on dirty nets without a
         [delay_gen] bump, and both invalidations travel through one
         [struct_gen] tick. *)
      Mbr_obs.Trace.with_span ~name:"sta.repair" @@ fun () ->
      t.struct_gen <- t.struct_gen + 1;
      let n_dirty = ref 0 in
      for pid = 0 to t.n - 1 do
        if fwd_dirty.(pid) || bwd_dirty.(pid) then incr n_dirty
      done;
      Mbr_obs.Metrics.incr ~by:!n_dirty m_dirty_pins;
      if !n_dirty * 64 >= t.n then begin
        (* Big batch (a composition pass just replaced thousands of
           registers): the per-pin heap worklist below would chase
           most of the graph through the arc *lists*. Build the
           shared propagation plan now — the skew sweeps that follow
           reuse it as-is, so the build is moved earlier, not added —
           and repair both planes with the mark-skip scans. A pin is
           still recomputed from scratch off its final predecessors
           and its cone chased only while values actually change, so
           the planes land bit-identical to the worklist's. *)
        let p = ensure_plan t in
        let scr = plan_scratch_for p 0 in
        let fseeds = ref [] and bseeds = ref [] in
        for pid = t.n - 1 downto 0 do
          if fwd_dirty.(pid) then fseeds := pid :: !fseeds;
          if bwd_dirty.(pid) then bseeds := pid :: !bseeds
        done;
        ignore
          (forward_scan t p scr ~k0:0 ~k1:(nc - 1) ~seeds:!fseeds
             ~changed:None ~cancel:None);
        ignore
          (backward_scan t p scr ~k0:0 ~k1:(nc - 1) ~seeds:!bseeds
             ~changed:None ~cancel:None)
      end
      else begin
        (* worklist propagation in topological order; a pin is
           recomputed from scratch off its (final) predecessors, and
           its cone is chased only while values actually change. All
           corners ride one worklist: a pin requeues when any corner
           moved, and every corner's value is committed together. *)
        let tmp = Array.make nc 0.0 in
        let fq = Pq.create () in
        let fqueued = Array.make t.n false in
        let fpush pid =
          if t.in_graph.(pid) && t.topo_pos.(pid) >= 0 && not fqueued.(pid)
          then begin
            fqueued.(pid) <- true;
            Pq.push fq (t.topo_pos.(pid), pid)
          end
        in
        for pid = 0 to t.n - 1 do
          if fwd_dirty.(pid) then fpush pid
        done;
        while not (Pq.is_empty fq) do
          let pid = Pq.pop fq in
          if recompute_arrival t tmp pid then begin
            commit_arrival t tmp pid;
            List.iter (fun e -> fpush e.e_dst) t.succs.(pid)
          end
        done;
        let bq = Pq.create () in
        let bqueued = Array.make t.n false in
        let bpush pid =
          if t.in_graph.(pid) && t.topo_pos.(pid) >= 0 && not bqueued.(pid)
          then begin
            bqueued.(pid) <- true;
            Pq.push bq (-t.topo_pos.(pid), pid)
          end
        in
        for pid = 0 to t.n - 1 do
          if bwd_dirty.(pid) then bpush pid
        done;
        while not (Pq.is_empty bq) do
          let pid = Pq.pop bq in
          if recompute_required t tmp pid then begin
            commit_required t tmp pid;
            List.iter (fun e -> bpush e.e_src) t.preds.(pid)
          end
        done
      end;
      t.dsg_cursor <- dsg_rev;
      t.pl_cursor <- pl_rev;
      t.analyzed <- true;
      t.n_refreshes <- t.n_refreshes + 1;
      Mbr_obs.Metrics.incr m_refreshes
    with Bail ->
      Mbr_obs.Metrics.incr m_rebuild_fallbacks;
      rebuild t

let full_builds t = t.n_full_builds

let refreshes t = t.n_refreshes

(* Telemetry for the skew-update hot path: [sta.skew.frontier_pins]
   accumulates pins processed by the propagation passes (frontier pins
   in frontier mode, every in-graph pin in full-sweep mode),
   [sta.skew.level_passes] the non-empty levels the frontier passes
   walked, [sta.skew.corner_par] the corners fanned out to parallel
   per-corner sweeps. *)
let m_skew_frontier = Mbr_obs.Metrics.counter "sta.skew.frontier_pins"

let m_skew_levels = Mbr_obs.Metrics.counter "sta.skew.level_passes"

let m_skew_corner_par = Mbr_obs.Metrics.counter "sta.skew.corner_par"

(* [collect_touched] additionally reports which registers own a D or Q
   pin whose arrival or required actually changed — the complete set of
   registers whose [reg_d_slack]/[reg_q_slack] can differ from before
   the call. The worklist-driven skew optimizer uses this to re-examine
   only those registers.

   With [jobs > 1] and more than one corner, corners propagate in
   parallel on [Mbr_util.Pool]: corner [k]'s fixpoint at a pin depends
   only on corner-[k] predecessor values, so per-corner passes reach
   exactly the per-corner fixpoints of the all-corners pass, and the
   union of per-corner changed sets equals the serial changed set.
   Each task owns its corner's interleaved plane columns and its own
   plan scratch slot;
   everything else it touches (plan, skew table, design) is read-only
   for the duration of the call. *)
let update_skews_impl ?(jobs = 1) ?cancel t ~collect_touched assignments =
  if not t.analyzed then begin
    List.iter (fun (cid, s) -> write_skew t cid s) assignments;
    analyze t;
    if collect_touched then
      (* a full analysis may have moved any slack *)
      Design.registers t.dsg
    else []
  end
  else begin
    let moved = List.filter (fun (cid, s) -> skew t cid <> s) assignments in
    List.iter (fun (cid, s) -> write_skew t cid s) moved;
    t.analyzed <- true;
    (* seed pins *)
    let q_seeds = ref [] and d_seeds = ref [] in
    List.iter
      (fun (cid, _) ->
        List.iter
          (fun pid ->
            let p = Design.pin t.dsg pid in
            match p.Types.p_kind with
            | Types.Pin_q _ when t.in_graph.(pid) -> q_seeds := pid :: !q_seeds
            | Types.Pin_d _ when t.in_graph.(pid) -> d_seeds := pid :: !d_seeds
            | _ -> ())
          (Design.pins_of t.dsg cid))
      moved;
    if !q_seeds = [] && !d_seeds = [] then []
    else begin
      let p = ensure_plan t in
      let nc = Array.length t.corners in
      (* Mode pick: a moved register's cone typically fans out to
         orders of magnitude more pins than it has seeds, so once the
         seed set passes ~1/64 of the graph the union frontier covers
         most levels and the sequential mark-skip scan beats the
         frontier bookkeeping (measured crossover on the D1 ladder
         sits well above this — the constant errs toward keeping
         genuinely small batches on the frontier path). *)
      let n_seeds = List.length !q_seeds + List.length !d_seeds in
      let big = n_seeds * 64 >= Array.length t.topo in
      let fwd scr ~k0 ~k1 ~changed =
        if big then
          ( forward_scan t p scr ~k0 ~k1 ~seeds:!q_seeds ~changed ~cancel,
            1 )
        else forward_pass t p scr ~k0 ~k1 ~seeds:!q_seeds ~changed ~cancel
      in
      let bwd scr ~k0 ~k1 ~changed =
        if big then
          ( backward_scan t p scr ~k0 ~k1 ~seeds:!d_seeds ~changed ~cancel,
            1 )
        else backward_pass t p scr ~k0 ~k1 ~seeds:!d_seeds ~changed ~cancel
      in
      let changed =
        if jobs > 1 && nc > 1 then begin
          Mbr_obs.Metrics.incr ~by:nc m_skew_corner_par;
          let per =
            Mbr_util.Pool.map_array ~jobs:(min jobs nc)
              (fun k ->
                let scr = plan_scratch_for p k in
                let cv = if collect_touched then Some (ivec_create ()) else None in
                let pf, lf = fwd scr ~k0:k ~k1:k ~changed:cv in
                let pb, lb = bwd scr ~k0:k ~k1:k ~changed:cv in
                (cv, pf + pb, lf + lb))
              (Array.init nc Fun.id)
          in
          let pins = Array.fold_left (fun a (_, c, _) -> a + c) 0 per in
          let lvls = Array.fold_left (fun a (_, _, c) -> a + c) 0 per in
          Mbr_obs.Metrics.incr ~by:pins m_skew_frontier;
          Mbr_obs.Metrics.incr ~by:lvls m_skew_levels;
          if not collect_touched then None
          else begin
            (* union of the per-corner changed sets, deduped with an
               epoch mark (slot 0's scratch — the fan-out has joined) *)
            let scr = plan_scratch_for p 0 in
            scr.ps_epoch <- scr.ps_epoch + 1;
            let epoch = scr.ps_epoch in
            let u = ivec_create () in
            Array.iter
              (fun (cv, _, _) ->
                match cv with
                | Some v ->
                  for i = 0 to v.iv_len - 1 do
                    let pid = v.iv_a.(i) in
                    if scr.ps_mark.(pid) <> epoch then begin
                      scr.ps_mark.(pid) <- epoch;
                      ivec_push u pid
                    end
                  done
                | None -> ())
              per;
            Some u
          end
        end
        else begin
          let scr = plan_scratch_for p 0 in
          let cv = if collect_touched then Some (ivec_create ()) else None in
          let pf, lf = fwd scr ~k0:0 ~k1:(nc - 1) ~changed:cv in
          let pb, lb = bwd scr ~k0:0 ~k1:(nc - 1) ~changed:cv in
          Mbr_obs.Metrics.incr ~by:(pf + pb) m_skew_frontier;
          Mbr_obs.Metrics.incr ~by:(lf + lb) m_skew_levels;
          cv
        end
      in
      match changed with
      | None -> []
      | Some v ->
        let regs, slot = register_index t in
        let seen = Array.make (max (Array.length regs) 1) false in
        let acc = ref [] in
        for i = 0 to v.iv_len - 1 do
          let pid = v.iv_a.(i) in
          let pn = Design.pin t.dsg pid in
          match pn.Types.p_kind with
          | Types.Pin_d _ | Types.Pin_q _ ->
            let cid = pn.Types.p_cell in
            let s = if cid < Array.length slot then slot.(cid) else -1 in
            if s >= 0 && not seen.(s) then begin
              seen.(s) <- true;
              acc := cid :: !acc
            end
          | _ -> ()
        done;
        List.sort compare !acc
    end
  end

let update_skews ?jobs ?cancel t assignments =
  ignore (update_skews_impl ?jobs ?cancel t ~collect_touched:false assignments)

let update_skews_touched ?jobs ?cancel t assignments =
  update_skews_impl ?jobs ?cancel t ~collect_touched:true assignments

(* ---- worst-corner accessors ----

   Reachability is structural (corner-independent), so a pin either has
   a finite arrival in every corner or in none; likewise requireds. The
   worst arrival over corners is the max, the worst required the min,
   and the worst slack is the min of the per-corner slacks — note this
   is NOT (min required) - (max arrival), which could pair values from
   different corners. *)

(* Worst slack over the corner planes for an in-graph pin, or +inf when
   unreached in every corner. The allocation-free core under [slack],
   [wns_tns] and [reg_pin_slack]: no option, no intermediate list. *)
let pin_worst_slack t pid =
  let nc = Array.length t.corners in
  let worst = ref infinity in
  for k = 0 to nc - 1 do
    let a = pget t.arrival ((pid * nc) + k)
    and r = pget t.required ((pid * nc) + k) in
    if a > neg_infinity && r < infinity then begin
      let s = r -. a in
      if s < !worst then worst := s
    end
  done;
  !worst

let arrival t pid =
  ensure t;
  if pid < 0 || pid >= t.n || not t.in_graph.(pid) then None
  else begin
    let nc = Array.length t.corners in
    let best = ref neg_infinity in
    for k = 0 to nc - 1 do
      if pget t.arrival ((pid * nc) + k) > !best then
        best := pget t.arrival ((pid * nc) + k)
    done;
    if !best = neg_infinity then None else Some !best
  end

let required t pid =
  ensure t;
  if pid < 0 || pid >= t.n || not t.in_graph.(pid) then None
  else begin
    let nc = Array.length t.corners in
    let best = ref infinity in
    for k = 0 to nc - 1 do
      if pget t.required ((pid * nc) + k) < !best then
        best := pget t.required ((pid * nc) + k)
    done;
    if !best = infinity then None else Some !best
  end

let slack t pid =
  ensure t;
  if pid < 0 || pid >= t.n || not t.in_graph.(pid) then None
  else begin
    let s = pin_worst_slack t pid in
    if s < infinity then Some s
    else begin
      (* +inf is also a legal slack value; distinguish unreached *)
      let nc = Array.length t.corners in
      let valid = ref false in
      for k = 0 to nc - 1 do
        if
          pget t.arrival ((pid * nc) + k) > neg_infinity
          && pget t.required ((pid * nc) + k) < infinity
        then valid := true
      done;
      if !valid then Some s else None
    end
  end

let corner_slack t k pid =
  ensure t;
  if k < 0 || k >= Array.length t.corners then
    invalid_arg "Sta.corner_slack: corner index out of range";
  if pid < 0 || pid >= t.n || not t.in_graph.(pid) then None
  else begin
    let nc = Array.length t.corners in
    let a = pget t.arrival ((pid * nc) + k)
    and r = pget t.required ((pid * nc) + k) in
    if a > neg_infinity && r < infinity then Some (r -. a) else None
  end

let endpoint_slacks t =
  ensure t;
  List.filter_map
    (fun (pid, _) ->
      match slack t pid with Some s -> Some (pid, s) | None -> None)
    t.endpoints

(* Single endpoint sweep over the planes — no [endpoint_slacks] list is
   materialized. The fold visits [t.endpoints] in list order, so the
   TNS float-summation order (and hence the bits) matches the historical
   list-based fold exactly. *)
let wns_tns t =
  ensure t;
  let w = ref infinity and tn = ref 0.0 in
  List.iter
    (fun (pid, _) ->
      let s = pin_worst_slack t pid in
      if s < infinity then begin
        if s < !w then w := s;
        if s < 0.0 then tn := !tn +. s
      end
      else begin
        let nc = Array.length t.corners in
        let valid = ref false in
        for k = 0 to nc - 1 do
          if
            pget t.arrival ((pid * nc) + k) > neg_infinity
            && pget t.required ((pid * nc) + k) < infinity
          then valid := true
        done;
        if !valid && s < !w then w := s
      end)
    t.endpoints;
  (!w, !tn)

let wns t = fst (wns_tns t)

let tns t = snd (wns_tns t)

let corner_wns_tns t k =
  ensure t;
  if k < 0 || k >= Array.length t.corners then
    invalid_arg "Sta.corner_wns_tns: corner index out of range";
  let nc = Array.length t.corners in
  List.fold_left
    (fun (w, tn) (pid, _) ->
      let a = pget t.arrival ((pid * nc) + k)
      and r = pget t.required ((pid * nc) + k) in
      if a > neg_infinity && r < infinity then begin
        let s = r -. a in
        (Float.min w s, if s < 0.0 then tn +. s else tn)
      end
      else (w, tn))
    (infinity, 0.0) t.endpoints

let per_corner_wns_tns t =
  ensure t;
  Array.to_list
    (Array.mapi
       (fun k c ->
         let w, tn = corner_wns_tns t k in
         (c.Corner.name, w, tn))
       t.corners)

let failing_endpoints t =
  ensure t;
  List.fold_left
    (fun acc (pid, _) -> if pin_worst_slack t pid < 0.0 then acc + 1 else acc)
    0 t.endpoints

let n_endpoints t = List.length t.endpoints

let output_load t pid =
  let p = Design.pin t.dsg pid in
  if p.Types.p_dir <> Types.Output then 0.0
  else match p.Types.p_net with Some nid -> net_load t nid | None -> 0.0

let reg_pin_slack t cid want_d =
  ensure t;
  let c = Design.cell t.dsg cid in
  (match c.Types.c_kind with
  | Types.Register _ -> ()
  | Types.Comb _ | Types.Clock_root | Types.Clock_gate _ | Types.Port _ ->
    invalid_arg "Sta: not a register");
  List.fold_left
    (fun acc pid ->
      let p = Design.pin t.dsg pid in
      let relevant =
        match p.Types.p_kind with
        | Types.Pin_d _ -> want_d && p.Types.p_net <> None
        | Types.Pin_q _ -> (not want_d) && p.Types.p_net <> None
        | _ -> false
      in
      if relevant && pid >= 0 && pid < t.n && t.in_graph.(pid) then begin
        let s = pin_worst_slack t pid in
        if s < acc then s else acc
      end
      else acc)
    infinity c.Types.c_pins

let reg_d_slack t cid = reg_pin_slack t cid true

let reg_q_slack t cid = reg_pin_slack t cid false
