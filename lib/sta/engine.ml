module Point = Mbr_geom.Point
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Cell_lib = Mbr_liberty.Cell

type config = {
  clock_period : float;
  wire_res : float;
  wire_cap : float;
  input_delay : float;
  output_delay : float;
}

let default_config =
  {
    clock_period = 800.0;
    wire_res = 0.002;
    wire_cap = 0.2;
    input_delay = 40.0;
    output_delay = 40.0;
  }

(* One timing arc, shared between the source's successor list and the
   destination's predecessor list. Arc delays depend on pin locations
   and net loads, so they are recomputed per analysis — but the memo
   lives in the edge record itself, valid while [e_gen] matches the
   engine's current delay generation, and the propagation hot loops
   never touch a hash table. The memo holds one derated delay per
   active corner (index-aligned with the engine's corner set; an
   array whose length disagrees with the set is stale regardless of
   generation). A full invalidation (every [analyze], which absorbs
   placement moves) is a single generation bump; selective
   invalidation stamps the record stale. Fresh splices start at
   generation -1, which never matches, and because the record is
   shared a delay is computed at most once per arc per generation no
   matter which direction reaches it first. [e_cell] distinguishes a
   comb input->output arc from a net driver->sink arc. *)
type edge = {
  e_src : Types.pin_id;
  e_dst : Types.pin_id;
  e_cell : bool;
  mutable e_delay : float array;
  mutable e_gen : int;
}

let mk_edge ~cell src dst =
  { e_src = src; e_dst = dst; e_cell = cell; e_delay = [||]; e_gen = -1 }

type endpoint_kind = Ep_reg_d of Types.cell_id | Ep_out_port

(* A binary min-heap of (priority, pin) pairs: the dirty-pin worklists
   process pins in topological order so every predecessor is final
   before a pin is recomputed. *)
module Pq = struct
  type t = { mutable a : (int * int) array; mutable len : int }

  let create () = { a = Array.make 64 (0, 0); len = 0 }

  let is_empty h = h.len = 0

  let push h x =
    if h.len = Array.length h.a then begin
      let b = Array.make (2 * h.len) (0, 0) in
      Array.blit h.a 0 b 0 h.len;
      h.a <- b
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.a.(!i) <- x;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if fst h.a.(p) > fst h.a.(!i) then begin
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := p
      end
      else continue := false
    done

  let pop h =
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.len && fst h.a.(l) < fst h.a.(!m) then m := l;
      if r < h.len && fst h.a.(r) < fst h.a.(!m) then m := r;
      if !m <> !i then begin
        let tmp = h.a.(!m) in
        h.a.(!m) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !m
      end
      else continue := false
    done;
    snd top
end

(* [arrival]/[required] are corner-major: one dense per-pin array per
   active corner, all sharing the single graph (topology, arcs,
   start/endpoints). Reachability is structural — a pin has a finite
   arrival in one corner iff it does in every corner — so loops guard
   on corner 0 and the per-corner inner loops never re-test. *)
type t = {
  cfg : config;
  pl : Placement.t;
  dsg : Design.t;
  mutable corners : Corner.t array;
  mutable n : int; (* pin count covered by the arrays below *)
  mutable in_graph : bool array;
  mutable succs : edge list array;
  mutable preds : edge list array;
  mutable topo : Types.pin_id array;
  mutable topo_pos : int array;
      (** pin -> index in [topo] (-1 outside graph) *)
  mutable is_start : bool array;
  mutable ep_of : endpoint_kind option array;
  mutable startpoints : Types.pin_id list;
  mutable endpoints : (Types.pin_id * endpoint_kind) list;
  net_arcs : (Types.net_id, (Types.pin_id * Types.pin_id) list) Hashtbl.t;
      (** net arcs currently spliced into succs/preds, per net *)
  skews : (Types.cell_id, float) Hashtbl.t;
  mutable arrival : float array array;
  mutable required : float array array;
  mutable delay_gen : int; (* current validity stamp for edge memos *)
  mutable analyzed : bool;
  mutable dsg_cursor : int;  (** design edits already reflected *)
  mutable pl_cursor : int;  (** placement moves already reflected *)
  mutable n_full_builds : int;
  mutable n_refreshes : int;
}

exception Combinational_cycle of Types.pin_id list

let () =
  Printexc.register_printer (function
    | Combinational_cycle pins ->
      Some
        (Printf.sprintf "Sta.Combinational_cycle (%d pins): %s"
           (max 0 (List.length pins - 1))
           (String.concat " -> " (List.map string_of_int pins)))
    | _ -> None)

let cycle_to_string dsg pins =
  String.concat " -> "
    (List.map
       (fun pid ->
         let p = Design.pin dsg pid in
         let c = Design.cell dsg p.Types.p_cell in
         Printf.sprintf "%s/%s" c.Types.c_name
           (Types.pin_kind_to_string p.Types.p_kind))
       pins)

let config t = t.cfg

let placement t = t.pl

let corners t = t.corners

let n_corners t = Array.length t.corners

let set_skew t id s =
  Hashtbl.replace t.skews id s;
  t.analyzed <- false

let skew t id = match Hashtbl.find_opt t.skews id with Some s -> s | None -> 0.0

let skew_assignments t =
  Hashtbl.fold
    (fun cid s acc -> if s <> 0.0 then (cid, s) :: acc else acc)
    t.skews []
  |> List.sort compare

(* The data graph excludes clock distribution and scan pins. *)
let data_pin dsg pid =
  let p = Design.pin dsg pid in
  let c = Design.cell dsg p.Types.p_cell in
  if c.Types.c_dead then false
  else
    match (c.Types.c_kind, p.Types.p_kind) with
    | Types.Register _, (Types.Pin_d _ | Types.Pin_q _) -> true
    | Types.Register _, _ -> false
    | Types.Comb _, (Types.Pin_in _ | Types.Pin_out) -> true
    | Types.Comb _, _ -> false
    | Types.Port _, Types.Pin_port -> true
    | Types.Port _, _ -> false
    | (Types.Clock_root | Types.Clock_gate _), _ -> false

(* Data net arcs (driver -> each sink) under the current membership;
   clock nets and nets without an in-graph driver contribute none. *)
let net_arc_pairs dsg in_graph nid =
  let net = Design.net dsg nid in
  if net.Types.n_is_clock then []
  else
    match Design.driver dsg nid with
    | Some d when d < Array.length in_graph && in_graph.(d) ->
      List.filter_map
        (fun s -> if in_graph.(s) then Some (d, s) else None)
        (Design.sinks dsg nid)
    | Some _ | None -> []

(* The start/endpoint status a pin should have given the current
   connectivity (None kind for pins that are neither). *)
let pin_start_end dsg pid =
  let p = Design.pin dsg pid in
  let c = Design.cell dsg p.Types.p_cell in
  match (c.Types.c_kind, p.Types.p_kind) with
  | Types.Register _, Types.Pin_q _ -> (p.Types.p_net <> None, None)
  | Types.Register _, Types.Pin_d _ ->
    (false, if p.Types.p_net <> None then Some (Ep_reg_d p.Types.p_cell) else None)
  | Types.Port Types.In_port, _ -> (true, None)
  | Types.Port Types.Out_port, _ ->
    (false, if p.Types.p_net <> None then Some Ep_out_port else None)
  | _, _ -> (false, None)

type graph_parts = {
  g_n : int;
  g_in_graph : bool array;
  g_succs : edge list array;
  g_preds : edge list array;
  g_topo : Types.pin_id array;
  g_topo_pos : int array;
  g_is_start : bool array;
  g_ep_of : endpoint_kind option array;
  g_startpoints : Types.pin_id list;
  g_endpoints : (Types.pin_id * endpoint_kind) list;
  g_net_arcs : (Types.net_id, (Types.pin_id * Types.pin_id) list) Hashtbl.t;
}

let compute_graph dsg =
  let n = Design.n_pins dsg in
  let in_graph = Array.make n false in
  for pid = 0 to n - 1 do
    in_graph.(pid) <- data_pin dsg pid
  done;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let add_arc ~cell src dst =
    let e = mk_edge ~cell src dst in
    succs.(src) <- e :: succs.(src);
    preds.(dst) <- e :: preds.(dst)
  in
  (* net arcs *)
  let net_arcs = Hashtbl.create 1024 in
  for nid = 0 to Design.n_nets dsg - 1 do
    match net_arc_pairs dsg in_graph nid with
    | [] -> ()
    | pairs ->
      Hashtbl.replace net_arcs nid pairs;
      List.iter (fun (d, s) -> add_arc ~cell:false d s) pairs
  done;
  (* comb cell arcs *)
  List.iter
    (fun cid ->
      let c = Design.cell dsg cid in
      match c.Types.c_kind with
      | Types.Comb _ ->
        let outs, ins =
          List.partition
            (fun pid -> (Design.pin dsg pid).Types.p_dir = Types.Output)
            c.Types.c_pins
        in
        List.iter
          (fun o ->
            List.iter
              (fun i ->
                if in_graph.(i) && in_graph.(o) then add_arc ~cell:true i o)
              ins)
          outs
      | Types.Register _ | Types.Clock_root | Types.Clock_gate _ | Types.Port _
        ->
        ())
    (Design.live_cells dsg);
  (* start / end points *)
  let startpoints = ref [] in
  let endpoints = ref [] in
  for pid = 0 to n - 1 do
    if in_graph.(pid) then begin
      match pin_start_end dsg pid with
      | true, _ -> startpoints := pid :: !startpoints
      | false, Some kind -> endpoints := (pid, kind) :: !endpoints
      | false, None -> ()
    end
  done;
  (* Kahn topological order over pins that are in the graph *)
  let indeg = Array.make n 0 in
  for pid = 0 to n - 1 do
    indeg.(pid) <- List.length preds.(pid)
  done;
  let queue = Queue.create () in
  for pid = 0 to n - 1 do
    if in_graph.(pid) && indeg.(pid) = 0 then Queue.add pid queue
  done;
  let topo = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let pid = Queue.pop queue in
    topo.(!k) <- pid;
    incr k;
    List.iter
      (fun e ->
        indeg.(e.e_dst) <- indeg.(e.e_dst) - 1;
        if indeg.(e.e_dst) = 0 then Queue.add e.e_dst queue)
      succs.(pid)
  done;
  let n_in_graph = ref 0 in
  Array.iter (fun b -> if b then incr n_in_graph) in_graph;
  if !k <> !n_in_graph then begin
    (* Kahn left some pins unresolved: every one of them has an
       un-decremented incoming edge, i.e. an unresolved predecessor, so
       walking predecessors from any of them must close a loop. The
       witness is reported in data-flow (successor) order, closed by
       repeating the entry pin. *)
    let start = ref (-1) in
    (try
       for pid = 0 to n - 1 do
         if in_graph.(pid) && indeg.(pid) > 0 then begin
           start := pid;
           raise Exit
         end
       done
     with Exit -> ());
    let witness =
      if !start < 0 then []
      else begin
        let seen = Hashtbl.create 16 in
        let rec walk pid path =
          if Hashtbl.mem seen pid then begin
            (* [path] holds the predecessor walk in reverse; the loop is
               the segment from the first visit of [pid] onward, closed
               by [pid] itself, flipped into data-flow order *)
            let rec keep_from = function
              | p :: _ as l when p = pid -> l
              | _ :: tl -> keep_from tl
              | [] -> []
            in
            List.rev (keep_from (List.rev path) @ [ pid ])
          end
          else begin
            Hashtbl.add seen pid ();
            match List.find_opt (fun e -> indeg.(e.e_src) > 0) preds.(pid) with
            | Some e -> walk e.e_src (pid :: path)
            | None -> List.rev (pid :: path)
          end
        in
        walk !start []
      end
    in
    raise (Combinational_cycle witness)
  end;
  let topo = Array.sub topo 0 !k in
  let topo_pos = Array.make n (-1) in
  Array.iteri (fun idx pid -> topo_pos.(pid) <- idx) topo;
  let is_start = Array.make n false in
  List.iter (fun pid -> is_start.(pid) <- true) !startpoints;
  let ep_of = Array.make n None in
  List.iter (fun (pid, kind) -> ep_of.(pid) <- Some kind) !endpoints;
  {
    g_n = n;
    g_in_graph = in_graph;
    g_succs = succs;
    g_preds = preds;
    g_topo = topo;
    g_topo_pos = topo_pos;
    g_is_start = is_start;
    g_ep_of = ep_of;
    g_startpoints = !startpoints;
    g_endpoints = !endpoints;
    g_net_arcs = net_arcs;
  }

let m_corners = Mbr_obs.Metrics.counter "sta.corners"

let build ?(config = default_config) ?(corners = Corner.default) pl =
  if Array.length corners = 0 then
    invalid_arg "Sta.build: empty corner set";
  let dsg = Placement.design pl in
  let g = compute_graph dsg in
  let net_arcs = Hashtbl.create 1024 in
  Hashtbl.iter (fun k v -> Hashtbl.replace net_arcs k v) g.g_net_arcs;
  let nc = Array.length corners in
  Mbr_obs.Metrics.incr ~by:nc m_corners;
  {
    cfg = config;
    pl;
    dsg;
    corners = Array.copy corners;
    n = g.g_n;
    in_graph = g.g_in_graph;
    succs = g.g_succs;
    preds = g.g_preds;
    topo = g.g_topo;
    topo_pos = g.g_topo_pos;
    is_start = g.g_is_start;
    ep_of = g.g_ep_of;
    startpoints = g.g_startpoints;
    endpoints = g.g_endpoints;
    net_arcs;
    skews = Hashtbl.create 64;
    arrival = Array.init nc (fun _ -> Array.make g.g_n neg_infinity);
    required = Array.init nc (fun _ -> Array.make g.g_n infinity);
    delay_gen = 0;
    analyzed = false;
    dsg_cursor = Design.revision dsg;
    pl_cursor = Placement.revision pl;
    n_full_builds = 1;
    n_refreshes = 0;
  }

let set_corners t cs =
  if Array.length cs = 0 then invalid_arg "Sta.set_corners: empty corner set";
  t.corners <- Array.copy cs;
  let nc = Array.length cs in
  t.arrival <- Array.init nc (fun _ -> Array.make t.n neg_infinity);
  t.required <- Array.init nc (fun _ -> Array.make t.n infinity);
  t.analyzed <- false;
  Mbr_obs.Metrics.incr ~by:nc m_corners

(* ---- delay computation ---- *)

let net_load t nid =
  let dsg = t.dsg in
  let pin_caps =
    List.fold_left
      (fun acc s -> acc +. Design.pin_cap dsg s)
      0.0 (Design.sinks dsg nid)
  in
  let wire_len =
    match Placement.net_box t.pl nid with
    | Some box -> Mbr_geom.Rect.half_perimeter box
    | None -> 0.0
  in
  pin_caps +. (t.cfg.wire_cap *. wire_len)

let wire_delay t src dst =
  let dsg = t.dsg in
  let psrc = Design.pin dsg src and pdst = Design.pin dsg dst in
  match
    ( Placement.location_opt t.pl psrc.Types.p_cell,
      Placement.location_opt t.pl pdst.Types.p_cell )
  with
  | Some _, Some _ ->
    let a = Placement.pin_location t.pl src in
    let b = Placement.pin_location t.pl dst in
    let len = Point.manhattan a b in
    let sink_cap = Design.pin_cap dsg dst in
    t.cfg.wire_res *. len *. ((t.cfg.wire_cap *. len /. 2.0) +. sink_cap)
  | _, _ -> 0.0

(* Underated arc delay; corners scale it multiplicatively (wire factor
   for net arcs, cell factor for comb arcs). *)
let compute_edge_base_delay t e =
  if not e.e_cell then wire_delay t e.e_src e.e_dst
  else begin
    let p = Design.pin t.dsg e.e_dst in
    let c = Design.cell t.dsg p.Types.p_cell in
    match c.Types.c_kind with
    | Types.Comb a ->
      let load =
        match p.Types.p_net with
        | Some nid -> net_load t nid
        | None -> 0.0
      in
      a.Types.intrinsic +. (a.Types.drive_res *. load)
    | Types.Register _ | Types.Clock_root | Types.Clock_gate _
    | Types.Port _ ->
      0.0
  end

let edge_delays t e =
  let nc = Array.length t.corners in
  if e.e_gen = t.delay_gen && Array.length e.e_delay = nc then e.e_delay
  else begin
    let base = compute_edge_base_delay t e in
    let d = if Array.length e.e_delay = nc then e.e_delay else Array.make nc 0.0 in
    if e.e_cell then
      for k = 0 to nc - 1 do
        d.(k) <- base *. t.corners.(k).Corner.cell
      done
    else
      for k = 0 to nc - 1 do
        d.(k) <- base *. t.corners.(k).Corner.wire
      done;
    e.e_delay <- d;
    e.e_gen <- t.delay_gen;
    d
  end

let clock_arrival t cid = skew t cid

let launch_arrival t k pid =
  (* arrival at a startpoint, under corner [k] *)
  let p = Design.pin t.dsg pid in
  let c = Design.cell t.dsg p.Types.p_cell in
  match (c.Types.c_kind, p.Types.p_kind) with
  | Types.Register a, Types.Pin_q _ ->
    let load =
      match p.Types.p_net with Some nid -> net_load t nid | None -> 0.0
    in
    clock_arrival t p.Types.p_cell
    +. (Cell_lib.clk_to_q a.Types.lib_cell ~load *. t.corners.(k).Corner.cell)
  | Types.Port Types.In_port, _ -> t.cfg.input_delay
  | (Types.Register _ | Types.Comb _ | Types.Clock_root | Types.Clock_gate _
    | Types.Port Types.Out_port), _ ->
    0.0

let endpoint_required t k (pid, kind) =
  ignore pid;
  match kind with
  | Ep_reg_d cid ->
    let a = Design.reg_attrs t.dsg cid in
    t.cfg.clock_period +. clock_arrival t cid
    -. (a.Types.lib_cell.Cell_lib.setup *. t.corners.(k).Corner.setup)
  | Ep_out_port -> t.cfg.clock_period -. t.cfg.output_delay

let analyze t =
  t.delay_gen <- t.delay_gen + 1;
  let nc = Array.length t.corners in
  for k = 0 to nc - 1 do
    Array.fill t.arrival.(k) 0 t.n neg_infinity;
    Array.fill t.required.(k) 0 t.n infinity
  done;
  List.iter
    (fun pid ->
      for k = 0 to nc - 1 do
        t.arrival.(k).(pid) <-
          Float.max t.arrival.(k).(pid) (launch_arrival t k pid)
      done)
    t.startpoints;
  (* forward *)
  Array.iter
    (fun pid ->
      if t.arrival.(0).(pid) > neg_infinity then
        List.iter
          (fun e ->
            let d = edge_delays t e in
            for k = 0 to nc - 1 do
              let a = t.arrival.(k).(pid) +. d.(k) in
              if a > t.arrival.(k).(e.e_dst) then t.arrival.(k).(e.e_dst) <- a
            done)
          t.succs.(pid))
    t.topo;
  (* backward *)
  List.iter
    (fun (pid, kind) ->
      for k = 0 to nc - 1 do
        t.required.(k).(pid) <-
          Float.min t.required.(k).(pid) (endpoint_required t k (pid, kind))
      done)
    t.endpoints;
  for i = Array.length t.topo - 1 downto 0 do
    let pid = t.topo.(i) in
    if t.required.(0).(pid) < infinity then
      List.iter
        (fun e ->
          let d = edge_delays t e in
          for k = 0 to nc - 1 do
            let r = t.required.(k).(pid) -. d.(k) in
            if r < t.required.(k).(e.e_src) then t.required.(k).(e.e_src) <- r
          done)
        t.preds.(pid)
  done;
  (* A full numeric pass recomputes every delay against the current
     placement, so pending moves are absorbed. Pending *structural*
     design edits are not: the graph arrays are untouched here, so
     [dsg_cursor] stays where it is and a later {!refresh} repairs the
     structure. *)
  t.pl_cursor <- Placement.revision t.pl;
  t.analyzed <- true

let ensure t = if not t.analyzed then analyze t

(* ---- incremental refresh ---- *)

exception Bail

let grow t n' =
  if n' > t.n then begin
    let grow_arr a def =
      let b = Array.make n' def in
      Array.blit a 0 b 0 t.n;
      b
    in
    t.in_graph <- grow_arr t.in_graph false;
    t.succs <- grow_arr t.succs [];
    t.preds <- grow_arr t.preds [];
    t.topo_pos <- grow_arr t.topo_pos (-1);
    t.is_start <- grow_arr t.is_start false;
    t.ep_of <- grow_arr t.ep_of None;
    t.arrival <- Array.map (fun a -> grow_arr a neg_infinity) t.arrival;
    t.required <- Array.map (fun r -> grow_arr r infinity) t.required;
    t.n <- n'
  end

(* Telemetry: the incremental engine's health is "how often does
   refresh stay incremental, and how much does it touch when it does".
   [sta.dirty_pins] accumulates the seed set of each incremental
   splice; [sta.rebuild_fallbacks] counts Bail escapes to the O(n)
   path. [sta.corners] accumulates the corner count of every engine
   build / corner-set swap. All no-ops while [Mbr_obs] is disabled. *)
let m_refreshes = Mbr_obs.Metrics.counter "sta.refreshes"

let m_rebuild_fallbacks = Mbr_obs.Metrics.counter "sta.rebuild_fallbacks"

let m_dirty_pins = Mbr_obs.Metrics.counter "sta.dirty_pins"

(* Full fallback: recompute the graph from scratch, keep skews, rerun a
   complete analyze. Any partial splicing a bailed refresh left behind
   is discarded wholesale because every array is replaced. *)
let rebuild t =
  let g = compute_graph t.dsg in
  let nc = Array.length t.corners in
  t.n <- g.g_n;
  t.in_graph <- g.g_in_graph;
  t.succs <- g.g_succs;
  t.preds <- g.g_preds;
  t.topo <- g.g_topo;
  t.topo_pos <- g.g_topo_pos;
  t.is_start <- g.g_is_start;
  t.ep_of <- g.g_ep_of;
  t.startpoints <- g.g_startpoints;
  t.endpoints <- g.g_endpoints;
  Hashtbl.reset t.net_arcs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.net_arcs k v) g.g_net_arcs;
  t.arrival <- Array.init nc (fun _ -> Array.make g.g_n neg_infinity);
  t.required <- Array.init nc (fun _ -> Array.make g.g_n infinity);
  t.dsg_cursor <- Design.revision t.dsg;
  t.n_full_builds <- t.n_full_builds + 1;
  analyze t

(* Recompute one pin's arrivals (all corners) from its final
   predecessors into [tmp]; true if any corner differs from the stored
   value. Shared by refresh and skew propagation so the fixpoint is the
   full analysis's, corner by corner. *)
let recompute_arrival t tmp pid =
  let nc = Array.length t.corners in
  for k = 0 to nc - 1 do
    tmp.(k) <- (if t.is_start.(pid) then launch_arrival t k pid else neg_infinity)
  done;
  List.iter
    (fun e ->
      if t.arrival.(0).(e.e_src) > neg_infinity then begin
        let d = edge_delays t e in
        for k = 0 to nc - 1 do
          let a = t.arrival.(k).(e.e_src) +. d.(k) in
          if a > tmp.(k) then tmp.(k) <- a
        done
      end)
    t.preds.(pid);
  let changed = ref false in
  for k = 0 to nc - 1 do
    if tmp.(k) <> t.arrival.(k).(pid) then changed := true
  done;
  !changed

let recompute_required t tmp pid =
  let nc = Array.length t.corners in
  (match t.ep_of.(pid) with
  | Some kind ->
    for k = 0 to nc - 1 do
      tmp.(k) <- endpoint_required t k (pid, kind)
    done
  | None -> Array.fill tmp 0 nc infinity);
  List.iter
    (fun e ->
      if t.required.(0).(e.e_dst) < infinity then begin
        let d = edge_delays t e in
        for k = 0 to nc - 1 do
          let r = t.required.(k).(e.e_dst) -. d.(k) in
          if r < tmp.(k) then tmp.(k) <- r
        done
      end)
    t.succs.(pid);
  let changed = ref false in
  for k = 0 to nc - 1 do
    if tmp.(k) <> t.required.(k).(pid) then changed := true
  done;
  !changed

let commit_arrival t tmp pid =
  let nc = Array.length t.corners in
  for k = 0 to nc - 1 do
    t.arrival.(k).(pid) <- tmp.(k)
  done

let commit_required t tmp pid =
  let nc = Array.length t.corners in
  for k = 0 to nc - 1 do
    t.required.(k).(pid) <- tmp.(k)
  done

(* Splice the edits logged since the cursors into the existing graph and
   re-propagate only what they touched. The structural part handles
   register/port pins exactly: those are pure sources or pure sinks of
   the data graph (no timing arc crosses a register), so composition
   edits never perturb the relative order of surviving pins and the
   topological order can be repaired by prepending new sources and
   appending new sinks. Anything that could reorder the interior — a
   combinational cell appearing or vanishing, or a new arc that
   contradicts the current order — bails to {!rebuild}, as does an edit
   batch whose touched-pin estimate exceeds [rebuild_threshold] of the
   graph. The incremental splice costs roughly an order of magnitude
   more per touched pin than the batched full build (list surgery and a
   worklist heap vs three linear passes), so the break-even sits near a
   0.1 pin ratio; the 0.25 default keeps genuinely local ECO batches (a
   few % of pins) on the cheap path and sends bulk edits — like a full
   composition pass replacing half the registers — to the rebuild they
   are better served by. *)
let refresh ?(rebuild_threshold = 0.25) t =
  let dsg_rev = Design.revision t.dsg in
  let pl_rev = Placement.revision t.pl in
  if not t.analyzed then begin
    if dsg_rev <> t.dsg_cursor then rebuild t else analyze t
  end
  else if dsg_rev = t.dsg_cursor && pl_rev = t.pl_cursor then ()
  else
    Mbr_obs.Trace.with_span ~name:"sta.refresh"
      ~args:[ ("n_pins", Mbr_obs.Trace.Int t.n) ]
    @@ fun () ->
    try
      let edits = Design.edits_since t.dsg t.dsg_cursor in
      let moved = Placement.moves_since t.pl t.pl_cursor in
      let dirty_nets = Hashtbl.create 64 in
      let added = ref [] and removed = ref [] and retyped = ref [] in
      List.iter
        (function
          | Design.Net_changed nid -> Hashtbl.replace dirty_nets nid ()
          | Design.Cell_added cid -> added := cid :: !added
          | Design.Cell_removed cid -> removed := cid :: !removed
          | Design.Cell_retyped cid -> retyped := cid :: !retyped)
        edits;
      (* A comb cell appearing or vanishing can reshape the interior of
         the topological order — punt. *)
      let is_comb cid =
        match (Design.cell t.dsg cid).Types.c_kind with
        | Types.Comb _ -> true
        | _ -> false
      in
      if List.exists is_comb !added || List.exists is_comb !removed then
        raise Bail;
      let nets_of_cell cid =
        List.filter_map
          (fun pid -> (Design.pin t.dsg pid).Types.p_net)
          (Design.pins_of t.dsg cid)
      in
      (* Moved cells change pin positions; retyped registers change pin
         offsets, caps and drive. Either way every incident net's arc
         delays and load are stale. *)
      List.iter
        (fun cid ->
          List.iter (fun nid -> Hashtbl.replace dirty_nets nid ()) (nets_of_cell cid))
        moved;
      List.iter
        (fun cid ->
          List.iter (fun nid -> Hashtbl.replace dirty_nets nid ()) (nets_of_cell cid))
        !retyped;
      let estimate =
        Hashtbl.fold
          (fun nid () acc ->
            acc + List.length (Design.net t.dsg nid).Types.n_pins)
          dirty_nets 0
        + List.fold_left
            (fun acc cid -> acc + List.length (Design.pins_of t.dsg cid))
            0
            (!added @ !removed @ !retyped)
        + List.length moved
      in
      if float_of_int estimate > rebuild_threshold *. float_of_int (max t.n 1)
      then raise Bail;
      grow t (Design.n_pins t.dsg);
      let nc = Array.length t.corners in
      let fwd_dirty = Array.make t.n false in
      let bwd_dirty = Array.make t.n false in
      let mark_fwd pid = fwd_dirty.(pid) <- true in
      let mark_bwd pid = bwd_dirty.(pid) <- true in
      (* 1. removed cells leave the graph *)
      List.iter
        (fun cid ->
          List.iter
            (fun pid ->
              if t.in_graph.(pid) then begin
                List.iter
                  (fun e ->
                    t.preds.(e.e_dst) <-
                      List.filter (fun e' -> e'.e_src <> pid) t.preds.(e.e_dst);
                    mark_fwd e.e_dst)
                  t.succs.(pid);
                List.iter
                  (fun e ->
                    t.succs.(e.e_src) <-
                      List.filter (fun e' -> e'.e_dst <> pid) t.succs.(e.e_src);
                    mark_bwd e.e_src)
                  t.preds.(pid);
                t.succs.(pid) <- [];
                t.preds.(pid) <- [];
                t.in_graph.(pid) <- false;
                t.is_start.(pid) <- false;
                t.ep_of.(pid) <- None;
                t.topo_pos.(pid) <- -1;
                for k = 0 to nc - 1 do
                  t.arrival.(k).(pid) <- neg_infinity;
                  t.required.(k).(pid) <- infinity
                done
              end)
            (Design.pins_of t.dsg cid))
        !removed;
      if !removed <> [] then begin
        t.startpoints <- List.filter (fun pid -> t.in_graph.(pid)) t.startpoints;
        t.endpoints <- List.filter (fun (pid, _) -> t.in_graph.(pid)) t.endpoints
      end;
      (* 2. added cells join the graph; their start/endpoint status and
         arcs arrive through the Net_changed edits their wiring logged *)
      let new_pins = ref [] in
      List.iter
        (fun cid ->
          let c = Design.cell t.dsg cid in
          if not c.Types.c_dead then
            List.iter
              (fun pid ->
                if data_pin t.dsg pid && not t.in_graph.(pid) then begin
                  t.in_graph.(pid) <- true;
                  new_pins := pid :: !new_pins
                end)
              c.Types.c_pins)
        !added;
      (* 3. retyped registers: clk->q and setup changed *)
      List.iter
        (fun cid ->
          List.iter
            (fun pid ->
              if t.in_graph.(pid) then begin
                match (Design.pin t.dsg pid).Types.p_kind with
                | Types.Pin_q _ -> mark_fwd pid
                | Types.Pin_d _ -> mark_bwd pid
                | _ -> ()
              end)
            (Design.pins_of t.dsg cid))
        !retyped;
      (* 4. resplice every dirty net *)
      let check_status pid =
        let should_start, should_end = pin_start_end t.dsg pid in
        if should_start <> t.is_start.(pid) then begin
          t.is_start.(pid) <- should_start;
          (if should_start then t.startpoints <- pid :: t.startpoints
           else t.startpoints <- List.filter (fun x -> x <> pid) t.startpoints);
          mark_fwd pid
        end;
        match (should_end, t.ep_of.(pid)) with
        | None, None -> ()
        | Some k, Some k' when k = k' -> ()
        | _ ->
          t.ep_of.(pid) <- should_end;
          t.endpoints <- List.filter (fun (x, _) -> x <> pid) t.endpoints;
          (match should_end with
          | Some k -> t.endpoints <- (pid, k) :: t.endpoints
          | None -> ());
          mark_bwd pid
      in
      Hashtbl.iter
        (fun nid () ->
          let old =
            match Hashtbl.find_opt t.net_arcs nid with Some l -> l | None -> []
          in
          List.iter
            (fun (d, s) ->
              t.succs.(d) <- List.filter (fun e -> e.e_dst <> s) t.succs.(d);
              t.preds.(s) <- List.filter (fun e -> e.e_src <> d) t.preds.(s);
              if t.in_graph.(s) then mark_fwd s;
              if t.in_graph.(d) then mark_bwd d)
            old;
          let pairs = net_arc_pairs t.dsg t.in_graph nid in
          List.iter
            (fun (d, s) ->
              if
                t.topo_pos.(d) >= 0 && t.topo_pos.(s) >= 0
                && t.topo_pos.(d) > t.topo_pos.(s)
              then raise Bail;
              let e = mk_edge ~cell:false d s in
              t.succs.(d) <- e :: t.succs.(d);
              t.preds.(s) <- e :: t.preds.(s);
              mark_fwd s;
              mark_bwd d)
            pairs;
          if pairs = [] then Hashtbl.remove t.net_arcs nid
          else Hashtbl.replace t.net_arcs nid pairs;
          (* the driver's output load changed: comb delay through it and
             a startpoint's launch both depend on it *)
          (match Design.driver t.dsg nid with
          | Some d when t.in_graph.(d) ->
            if t.is_start.(d) then mark_fwd d;
            List.iter
              (fun e ->
                if e.e_cell then begin
                  e.e_gen <- -1;
                  mark_fwd d;
                  mark_bwd e.e_src
                end)
              t.preds.(d)
          | Some _ | None -> ());
          (* start/endpoint status follows connectivity *)
          List.iter
            (fun pid -> if t.in_graph.(pid) then check_status pid)
            (Design.net t.dsg nid).Types.n_pins;
          List.iter
            (fun (d, s) ->
              if t.in_graph.(d) then check_status d;
              if t.in_graph.(s) then check_status s)
            old)
        dirty_nets;
      (* 5. local topo repair: new pins are register/port pins, i.e.
         pure sources or pure sinks of the data graph *)
      if !new_pins <> [] then begin
        List.iter
          (fun pid ->
            if t.preds.(pid) <> [] && t.succs.(pid) <> [] then raise Bail)
          !new_pins;
        let sources, sinks =
          List.partition (fun pid -> t.preds.(pid) = []) !new_pins
        in
        let kept =
          List.filter (fun pid -> t.in_graph.(pid)) (Array.to_list t.topo)
        in
        t.topo <- Array.of_list (sources @ kept @ sinks);
        let tp = Array.make t.n (-1) in
        Array.iteri (fun idx pid -> tp.(pid) <- idx) t.topo;
        t.topo_pos <- tp
      end;
      (* 6. worklist propagation in topological order; a pin is
         recomputed from scratch off its (final) predecessors, and its
         cone is chased only while values actually change. All corners
         ride one worklist: a pin requeues when any corner moved, and
         every corner's value is committed together. *)
      let n_dirty = ref 0 in
      for pid = 0 to t.n - 1 do
        if fwd_dirty.(pid) || bwd_dirty.(pid) then incr n_dirty
      done;
      Mbr_obs.Metrics.incr ~by:!n_dirty m_dirty_pins;
      let tmp = Array.make nc 0.0 in
      let fq = Pq.create () in
      let fqueued = Array.make t.n false in
      let fpush pid =
        if t.in_graph.(pid) && t.topo_pos.(pid) >= 0 && not fqueued.(pid)
        then begin
          fqueued.(pid) <- true;
          Pq.push fq (t.topo_pos.(pid), pid)
        end
      in
      for pid = 0 to t.n - 1 do
        if fwd_dirty.(pid) then fpush pid
      done;
      while not (Pq.is_empty fq) do
        let pid = Pq.pop fq in
        if recompute_arrival t tmp pid then begin
          commit_arrival t tmp pid;
          List.iter (fun e -> fpush e.e_dst) t.succs.(pid)
        end
      done;
      let bq = Pq.create () in
      let bqueued = Array.make t.n false in
      let bpush pid =
        if t.in_graph.(pid) && t.topo_pos.(pid) >= 0 && not bqueued.(pid)
        then begin
          bqueued.(pid) <- true;
          Pq.push bq (-t.topo_pos.(pid), pid)
        end
      in
      for pid = 0 to t.n - 1 do
        if bwd_dirty.(pid) then bpush pid
      done;
      while not (Pq.is_empty bq) do
        let pid = Pq.pop bq in
        if recompute_required t tmp pid then begin
          commit_required t tmp pid;
          List.iter (fun e -> bpush e.e_src) t.preds.(pid)
        end
      done;
      t.dsg_cursor <- dsg_rev;
      t.pl_cursor <- pl_rev;
      t.analyzed <- true;
      t.n_refreshes <- t.n_refreshes + 1;
      Mbr_obs.Metrics.incr m_refreshes
    with Bail ->
      Mbr_obs.Metrics.incr m_rebuild_fallbacks;
      rebuild t

let full_builds t = t.n_full_builds

let refreshes t = t.n_refreshes

(* Incremental re-timing after skew-only changes. Arc delays are
   untouched (they depend on placement/loads, not on clock arrivals), so
   only the forward cone of the changed Q pins (arrivals) and the
   backward cone of the changed D pins (requireds) need recomputation.

   [collect_touched] additionally reports which registers own a D or Q
   pin whose arrival or required actually changed — the complete set of
   registers whose [reg_d_slack]/[reg_q_slack] can differ from before
   the call. The worklist-driven skew optimizer uses this to re-examine
   only those registers. *)
let update_skews_impl t ~collect_touched assignments =
  if not t.analyzed then begin
    List.iter (fun (cid, s) -> Hashtbl.replace t.skews cid s) assignments;
    analyze t;
    if collect_touched then
      (* a full analysis may have moved any slack *)
      Design.registers t.dsg
    else []
  end
  else begin
    let changed =
      List.filter (fun (cid, s) -> skew t cid <> s) assignments
    in
    List.iter (fun (cid, s) -> Hashtbl.replace t.skews cid s) changed;
    t.analyzed <- true;
    (* seed pins *)
    let q_seeds = ref [] and d_seeds = ref [] in
    List.iter
      (fun (cid, _) ->
        List.iter
          (fun pid ->
            let p = Design.pin t.dsg pid in
            match p.Types.p_kind with
            | Types.Pin_q _ when t.in_graph.(pid) -> q_seeds := pid :: !q_seeds
            | Types.Pin_d _ when t.in_graph.(pid) -> d_seeds := pid :: !d_seeds
            | _ -> ())
          (Design.pins_of t.dsg cid))
      changed;
    (* Convergence-driven propagation instead of whole-cone recompute: a
       pin is re-evaluated only when a fan-in (arrivals) or fan-out
       (requireds) value actually changed, and propagation stops where
       the recomputed values equal the stored ones in every corner. The
       recompute formula is the full analysis's, so the fixpoint — and
       every slack — is bit-identical to sweeping the whole cone;
       reconvergent paths whose other side dominates just stop the wave
       early. *)
    let nc = Array.length t.corners in
    let tmp = Array.make nc 0.0 in
    let need_f = Array.make t.n false in
    List.iter (fun pid -> need_f.(pid) <- true) !q_seeds;
    let changed = ref [] in
    Array.iter
      (fun pid ->
        if need_f.(pid) then begin
          if recompute_arrival t tmp pid then begin
            commit_arrival t tmp pid;
            changed := pid :: !changed;
            List.iter (fun e -> need_f.(e.e_dst) <- true) t.succs.(pid)
          end
        end)
      t.topo;
    let need_b = Array.make t.n false in
    List.iter (fun pid -> need_b.(pid) <- true) !d_seeds;
    for i = Array.length t.topo - 1 downto 0 do
      let pid = t.topo.(i) in
      if need_b.(pid) then begin
        if recompute_required t tmp pid then begin
          commit_required t tmp pid;
          changed := pid :: !changed;
          List.iter (fun e -> need_b.(e.e_src) <- true) t.preds.(pid)
        end
      end
    done;
    if not collect_touched then []
    else begin
      let owners = Hashtbl.create 64 in
      List.iter
        (fun pid ->
          let p = Design.pin t.dsg pid in
          match p.Types.p_kind with
          | Types.Pin_d _ | Types.Pin_q _ ->
            Hashtbl.replace owners p.Types.p_cell ()
          | _ -> ())
        !changed;
      List.sort compare (Hashtbl.fold (fun cid () acc -> cid :: acc) owners [])
    end
  end

let update_skews t assignments =
  ignore (update_skews_impl t ~collect_touched:false assignments)

let update_skews_touched t assignments =
  update_skews_impl t ~collect_touched:true assignments

(* ---- worst-corner accessors ----

   Reachability is structural (corner-independent), so a pin either has
   a finite arrival in every corner or in none; likewise requireds. The
   worst arrival over corners is the max, the worst required the min,
   and the worst slack is the min of the per-corner slacks — note this
   is NOT (min required) - (max arrival), which could pair values from
   different corners. *)

let arrival t pid =
  ensure t;
  if pid < 0 || pid >= t.n || not t.in_graph.(pid) then None
  else begin
    let nc = Array.length t.corners in
    let best = ref neg_infinity in
    for k = 0 to nc - 1 do
      if t.arrival.(k).(pid) > !best then best := t.arrival.(k).(pid)
    done;
    if !best = neg_infinity then None else Some !best
  end

let required t pid =
  ensure t;
  if pid < 0 || pid >= t.n || not t.in_graph.(pid) then None
  else begin
    let nc = Array.length t.corners in
    let best = ref infinity in
    for k = 0 to nc - 1 do
      if t.required.(k).(pid) < !best then best := t.required.(k).(pid)
    done;
    if !best = infinity then None else Some !best
  end

let slack t pid =
  ensure t;
  if pid < 0 || pid >= t.n || not t.in_graph.(pid) then None
  else begin
    let nc = Array.length t.corners in
    let worst = ref infinity in
    let valid = ref false in
    for k = 0 to nc - 1 do
      let a = t.arrival.(k).(pid) and r = t.required.(k).(pid) in
      if a > neg_infinity && r < infinity then begin
        valid := true;
        let s = r -. a in
        if s < !worst then worst := s
      end
    done;
    if !valid then Some !worst else None
  end

let corner_slack t k pid =
  ensure t;
  if k < 0 || k >= Array.length t.corners then
    invalid_arg "Sta.corner_slack: corner index out of range";
  if pid < 0 || pid >= t.n || not t.in_graph.(pid) then None
  else begin
    let a = t.arrival.(k).(pid) and r = t.required.(k).(pid) in
    if a > neg_infinity && r < infinity then Some (r -. a) else None
  end

let endpoint_slacks t =
  ensure t;
  List.filter_map
    (fun (pid, _) ->
      match slack t pid with Some s -> Some (pid, s) | None -> None)
    t.endpoints

let wns t =
  List.fold_left (fun acc (_, s) -> Float.min acc s) infinity (endpoint_slacks t)

let tns t =
  List.fold_left
    (fun acc (_, s) -> if s < 0.0 then acc +. s else acc)
    0.0 (endpoint_slacks t)

let wns_tns t =
  List.fold_left
    (fun (w, tn) (_, s) -> (Float.min w s, if s < 0.0 then tn +. s else tn))
    (infinity, 0.0) (endpoint_slacks t)

let corner_wns_tns t k =
  ensure t;
  if k < 0 || k >= Array.length t.corners then
    invalid_arg "Sta.corner_wns_tns: corner index out of range";
  List.fold_left
    (fun (w, tn) (pid, _) ->
      let a = t.arrival.(k).(pid) and r = t.required.(k).(pid) in
      if a > neg_infinity && r < infinity then begin
        let s = r -. a in
        (Float.min w s, if s < 0.0 then tn +. s else tn)
      end
      else (w, tn))
    (infinity, 0.0) t.endpoints

let per_corner_wns_tns t =
  ensure t;
  Array.to_list
    (Array.mapi
       (fun k c ->
         let w, tn = corner_wns_tns t k in
         (c.Corner.name, w, tn))
       t.corners)

let failing_endpoints t =
  List.length (List.filter (fun (_, s) -> s < 0.0) (endpoint_slacks t))

let n_endpoints t = List.length t.endpoints

let output_load t pid =
  let p = Design.pin t.dsg pid in
  if p.Types.p_dir <> Types.Output then 0.0
  else match p.Types.p_net with Some nid -> net_load t nid | None -> 0.0

let reg_pin_slack t cid want_d =
  let c = Design.cell t.dsg cid in
  (match c.Types.c_kind with
  | Types.Register _ -> ()
  | Types.Comb _ | Types.Clock_root | Types.Clock_gate _ | Types.Port _ ->
    invalid_arg "Sta: not a register");
  List.fold_left
    (fun acc pid ->
      let p = Design.pin t.dsg pid in
      let relevant =
        match p.Types.p_kind with
        | Types.Pin_d _ -> want_d && p.Types.p_net <> None
        | Types.Pin_q _ -> (not want_d) && p.Types.p_net <> None
        | _ -> false
      in
      if relevant then
        match slack t pid with Some s -> Float.min acc s | None -> acc
      else acc)
    infinity c.Types.c_pins

let reg_d_slack t cid = reg_pin_slack t cid true

let reg_q_slack t cid = reg_pin_slack t cid false
