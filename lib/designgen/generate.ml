module Rng = Mbr_util.Rng
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Cell_lib = Mbr_liberty.Cell
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement
module Legalizer = Mbr_place.Legalizer
module Engine = Mbr_sta.Engine

type t = {
  design : Design.t;
  placement : Placement.t;
  library : Library.t;
  sta_config : Engine.config;
  corners : Mbr_sta.Corner.t array;
  profile : Profile.t;
}

(* ---- small gate library for the combinational fill ---- *)

let gate_kinds =
  [|
    ("INV_X1", 1, 1.8, 12.0, 0.45, 0.8);
    ("NAND2_X1", 2, 2.2, 16.0, 0.55, 1.2);
    ("NOR2_X1", 2, 2.4, 18.0, 0.55, 1.2);
    ("NAND3_X1", 3, 2.6, 22.0, 0.60, 1.6);
    ("AOI22_X1", 4, 2.8, 26.0, 0.65, 2.0);
    ("NAND2_X2", 2, 1.3, 14.0, 0.80, 1.7);
  |]

let comb_attrs_of (gate, n_inputs, drive_res, intrinsic, input_cap, area) =
  Types.
    {
      gate;
      n_inputs;
      drive_res;
      intrinsic;
      input_cap;
      area;
      g_width = area /. 1.2;
      g_height = 1.2;
    }

(* ---- register spec drawn before any cell exists ---- *)

type reg_spec = {
  mutable r_cell : Cell_lib.t;
  r_class : string;
  r_clock : Types.net_id;
  r_enable : string option;
  r_reset : Types.net_id option;
  mutable r_scan : Types.scan_info option;
  mutable r_fixed : bool;
  mutable r_size_only : bool;
  mutable r_cluster : int;
  mutable r_pos : Point.t;
}

let draw_width rng mix =
  let roll = Rng.float rng 1.0 in
  let rec pick acc = function
    | [] -> 1
    | [ (w, _) ] -> w
    | (w, f) :: rest -> if roll < acc +. f then w else pick (acc +. f) rest
  in
  pick 0.0 mix

let generate (p : Profile.t) =
  let rng = Rng.create p.Profile.seed in
  let lib = Presets.default () in
  let dsg = Design.create ~name:p.Profile.name in

  (* clock + reset + scan-enable infrastructure *)
  let clk_root_net = Design.add_net ~is_clock:true dsg "clk" in
  let _clk_root = Design.add_clock_root dsg "u_clk_root" clk_root_net in
  let gated =
    List.init p.Profile.n_gated_domains (fun i ->
        let enable = Printf.sprintf "en%d" i in
        let out = Design.add_net ~is_clock:true dsg (Printf.sprintf "clk_g%d" i) in
        let icg =
          Design.add_clock_gate dsg
            (Printf.sprintf "u_icg%d" i)
            ~enable ~ck_in:clk_root_net ~ck_out:out
        in
        (out, enable, icg))
  in
  let rst_net = Design.add_net dsg "rst_n" in
  let _rst_port = Design.add_port dsg "rst_n" Types.In_port rst_net in
  let se_net = Design.add_net dsg "scan_en" in
  let _se_port = Design.add_port dsg "scan_en" Types.In_port se_net in

  (* primary inputs used as cone sources *)
  let n_in_ports = max 4 (p.Profile.n_registers / 25) in
  let in_nets =
    Array.init n_in_ports (fun i ->
        let nid = Design.add_net dsg (Printf.sprintf "pi%d" i) in
        ignore (Design.add_port dsg (Printf.sprintf "pi%d" i) Types.In_port nid);
        nid)
  in

  (* ---- register specs ---- *)
  let pick_class () =
    if Rng.chance rng p.Profile.latch_frac then "dlat"
    else if Rng.chance rng p.Profile.scan_class_frac then "sdffr"
    else if Rng.bool rng then "dff"
    else "dffr"
  in
  let pick_clock () =
    if Rng.chance rng p.Profile.ungated_frac || gated = [] then
      (clk_root_net, None)
    else begin
      let out, enable, _ = Rng.pick_list rng gated in
      (out, Some enable)
    end
  in
  let pick_cell r_class width drive =
    match Library.cells_of lib ~func_class:r_class ~bits:width with
    | [] -> invalid_arg "Generate: no cell for class/width"
    | cells -> (
      match
        List.find_opt
          (fun (c : Cell_lib.t) ->
            c.Cell_lib.drive = drive && c.Cell_lib.scan <> Cell_lib.Per_bit_scan)
          cells
      with
      | Some c -> c
      | None -> List.nth cells 0)
  in
  let specs =
    Array.init p.Profile.n_registers (fun _ ->
        let r_class = pick_class () in
        let width = draw_width rng p.Profile.width_mix in
        let drive = if Rng.chance rng 0.25 then 2 else 1 in
        let cell = pick_cell r_class width drive in
        let r_clock, r_enable = pick_clock () in
        let r_reset =
          if r_class = "dff" || r_class = "dlat" then None else Some rst_net
        in
        let r_scan =
          if r_class = "sdffr" then
            Some
              Types.
                {
                  partition = Rng.int rng p.Profile.n_scan_partitions;
                  section = None (* ordered sections assigned below *);
                }
          else None
        in
        let composable = Rng.chance rng p.Profile.composable_frac in
        let r_fixed = (not composable) && Rng.bool rng in
        let r_size_only = (not composable) && not r_fixed in
        {
          r_cell = cell;
          r_class;
          r_clock;
          r_enable;
          r_reset;
          r_scan;
          r_fixed;
          r_size_only;
          r_cluster = -1;
          r_pos = Point.origin;
        })
  in
  (* ordered scan sections: consecutive runs of scannable registers *)
  let scannable =
    Array.to_list
      (Array.of_seq
         (Seq.filter (fun i -> specs.(i).r_scan <> None)
            (Seq.init p.Profile.n_registers Fun.id)))
  in
  let n_ordered =
    int_of_float (float_of_int (List.length scannable) *. p.Profile.ordered_scan_frac)
  in
  let rec assign_sections sec pos budget = function
    | [] -> ()
    | _ when budget <= 0 -> ()
    | i :: rest ->
      let spec = specs.(i) in
      (match spec.r_scan with
      | Some s -> spec.r_scan <- Some { s with Types.section = Some (sec, pos) }
      | None -> ());
      let sec, pos = if pos >= 7 then (sec + 1, 0) else (sec, pos + 1) in
      assign_sections sec pos (budget - 1) rest
  in
  assign_sections 0 0 n_ordered scannable;

  (* ---- clustering: group compatible registers, chunk into clusters ----
     A flat profile deliberately destroys the module correlation: every
     register lands in one shuffled pool, so spatial neighbours mix
     classes, clocks, enables and scan partitions freely. *)
  let group_key i =
    if p.Profile.flat then ("", clk_root_net, None, -1)
    else begin
      let s = specs.(i) in
      ( s.r_class,
        s.r_clock,
        s.r_enable,
        match s.r_scan with Some sc -> sc.Types.partition | None -> -1 )
    end
  in
  let groups = Hashtbl.create 32 in
  Array.iteri
    (fun i _ ->
      let k = group_key i in
      let cur = match Hashtbl.find_opt groups k with Some l -> l | None -> [] in
      Hashtbl.replace groups k (i :: cur))
    specs;
  let clusters = ref [] in
  let n_clusters = ref 0 in
  Hashtbl.iter
    (fun _ members ->
      let members = List.rev members in
      let members =
        if p.Profile.flat then begin
          let a = Array.of_list members in
          Rng.shuffle rng a;
          Array.to_list a
        end
        else members
      in
      let rec chunk = function
        | [] -> ()
        | l ->
          let size =
            max 4
              (p.Profile.cluster_size_mean / 2
              + Rng.int rng (max 1 p.Profile.cluster_size_mean))
          in
          let rec take k acc = function
            | rest when k = 0 -> (List.rev acc, rest)
            | [] -> (List.rev acc, [])
            | x :: rest -> take (k - 1) (x :: acc) rest
          in
          let cl, rest = take size [] l in
          let id = !n_clusters in
          incr n_clusters;
          List.iter (fun i -> specs.(i).r_cluster <- id) cl;
          clusters := (id, cl) :: !clusters;
          chunk rest
      in
      chunk members)
    groups;
  let clusters = List.rev !clusters in

  (* Width homogenisation per cluster: a synthesized bus bank yields a
     run of equal-width MBRs, so most registers of a bank share one
     dominant width (with stragglers from the global mix). Likewise,
     composability is module-correlated: designers pin whole banks
     (interface/CDC modules), not random registers, so each cluster is
     mostly composable or mostly not. Flat profiles skip this entirely:
     widths and composability stay independent draws. *)
  if not p.Profile.flat then
  List.iter
    (fun (_, members) ->
      let dominant = draw_width rng p.Profile.width_mix in
      let cluster_composable = Rng.chance rng p.Profile.composable_frac in
      List.iter
        (fun i ->
          let s = specs.(i) in
          let width =
            if Rng.chance rng 0.95 then dominant
            else draw_width rng p.Profile.width_mix
          in
          if width <> s.r_cell.Cell_lib.bits then
            s.r_cell <- pick_cell s.r_class width s.r_cell.Cell_lib.drive;
          let composable =
            if Rng.chance rng 0.97 then cluster_composable
            else not cluster_composable
          in
          s.r_fixed <- (not composable) && Rng.bool rng;
          s.r_size_only <- (not composable) && not s.r_fixed)
        members)
    clusters;

  (* ---- floorplan sizing ---- *)
  let reg_area =
    Array.fold_left (fun acc s -> acc +. s.r_cell.Cell_lib.area) 0.0 specs
  in
  let n_gates_target =
    int_of_float (float_of_int p.Profile.n_registers *. p.Profile.gates_per_reg)
  in
  let avg_gate_area = 1.4 in
  let total_area = reg_area +. (float_of_int n_gates_target *. avg_gate_area) in
  let core_side =
    let raw = sqrt (total_area /. p.Profile.target_util) in
    (* round up to whole rows *)
    ceil (raw /. 1.2) *. 1.2
  in
  let core = Rect.make ~lx:0.0 ~ly:0.0 ~hx:core_side ~hy:core_side in
  let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2 in
  let pl = Placement.create fp dsg in
  let occ = Legalizer.Occupancy.of_placement pl in

  (* Cluster centers on a jittered floorplan grid: placed RTL modules
     occupy distinct regions, so banks rarely interleave. *)
  let margin = 4.0 in
  let fcols = max 1 (int_of_float (ceil (sqrt (float_of_int !n_clusters)))) in
  let fpitch = (core_side -. (2.0 *. margin)) /. float_of_int fcols in
  let order = Array.init !n_clusters Fun.id in
  Rng.shuffle rng order;
  let centers = Array.make !n_clusters Point.origin in
  Array.iteri
    (fun slot cid ->
      let col = slot mod fcols and row = slot / fcols in
      let jitter () = Rng.float_in rng (-0.15 *. fpitch) (0.15 *. fpitch) in
      centers.(cid) <-
        Point.make
          (margin +. ((float_of_int col +. 0.5) *. fpitch) +. jitter ())
          (margin +. ((float_of_int row +. 0.5) *. fpitch) +. jitter ()))
    order;

  (* ---- register positions: grid around the cluster center ---- *)
  List.iter
    (fun (cid, members) ->
      let c = centers.(cid) in
      let k = List.length members in
      (* banks go down as wide strips of ~3 rows, the way placers lay
         out synthesized buses — long clean runs per row *)
      let cols = max 1 (int_of_float (ceil (float_of_int k /. 3.0))) in
      List.iteri
        (fun idx i ->
          let s = specs.(i) in
          let col = idx mod cols and row = idx / cols in
          let dx = (float_of_int col -. (float_of_int cols /. 2.0)) *. (s.r_cell.Cell_lib.width +. 1.0) in
          let dy = (float_of_int row -. (float_of_int cols /. 2.0)) *. 2.4 in
          let desired =
            Floorplan.clamp_ll fp ~w:s.r_cell.Cell_lib.width ~h:1.2
              (Point.add c (Point.make dx dy))
          in
          let pos =
            match Legalizer.Occupancy.find_nearest occ ~w:s.r_cell.Cell_lib.width desired with
            | Some pt -> pt
            | None -> desired
          in
          s.r_pos <- pos;
          Legalizer.Occupancy.add occ
            (Rect.make ~lx:pos.Point.x ~ly:pos.Point.y
               ~hx:(pos.Point.x +. s.r_cell.Cell_lib.width)
               ~hy:(pos.Point.y +. 1.2)))
        members)
    clusters;

  (* ---- Q nets ---- *)
  let q_nets =
    Array.mapi
      (fun i s ->
        Array.init s.r_cell.Cell_lib.bits (fun b ->
            Design.add_net dsg (Printf.sprintf "q_%d_%d" i b)))
      specs
  in

  (* Cluster-level cone plans: real designs move buses between register
     banks, so all bits of a bank see near-identical logic depth and
     wire span — that similarity is exactly what makes banks mergeable
     (similar slacks, §2 timing compatibility). Each cluster picks one
     source cluster and one logic depth; its registers' cones follow
     the plan with small per-bit deviations. *)
  let cluster_members = Array.make !n_clusters [||] in
  List.iter
    (fun (cid, members) -> cluster_members.(cid) <- Array.of_list members)
    clusters;
  let cluster_src =
    Array.init !n_clusters (fun cid ->
        if Rng.chance rng p.Profile.cross_cluster_frac then
          Rng.int rng !n_clusters
        else begin
          (* a spatially nearby cluster, or itself *)
          let c = centers.(cid) in
          let best = ref cid and best_d = ref infinity in
          for o = 0 to !n_clusters - 1 do
            if o <> cid then begin
              let d = Point.manhattan c centers.(o) in
              if d < !best_d then begin
                best_d := d;
                best := o
              end
            end
          done;
          if Rng.chance rng 0.4 then cid else !best
        end)
  in
  (* Bimodal logic depth: optimized industrial snapshots concentrate
     their failing endpoints in a minority of deep, critical regions
     while the bulk of the design holds comfortable slack. *)
  let cluster_depth =
    Array.init !n_clusters (fun _ ->
        if Rng.chance rng 0.40 then 3 + Rng.int rng 2 else 1 + Rng.int rng 2)
  in
  let random_source_in cluster =
    let members = cluster_members.(cluster) in
    let pick_reg = Rng.pick rng members in
    let src = specs.(pick_reg) in
    let bit = Rng.int rng src.r_cell.Cell_lib.bits in
    (q_nets.(pick_reg).(bit), Point.make src.r_pos.Point.x src.r_pos.Point.y)
  in
  let random_source i =
    let s = specs.(i) in
    let cluster =
      if Rng.chance rng 0.95 then cluster_src.(s.r_cluster)
      else Rng.int rng !n_clusters
    in
    random_source_in cluster
  in

  (* ---- combinational cones driving each D bit ---- *)
  let gates_made = ref 0 in
  let gate_budget_per_bit =
    let total_bits =
      Array.fold_left (fun acc s -> acc + s.r_cell.Cell_lib.bits) 0 specs
    in
    float_of_int n_gates_target /. float_of_int (max 1 total_bits)
  in
  let place_gate attrs desired =
    let w = attrs.Types.g_width in
    let desired = Floorplan.clamp_ll fp ~w ~h:1.2 desired in
    match Legalizer.Occupancy.find_nearest occ ~w desired with
    | Some pt ->
      Legalizer.Occupancy.add occ
        (Rect.make ~lx:pt.Point.x ~ly:pt.Point.y ~hx:(pt.Point.x +. w)
           ~hy:(pt.Point.y +. 1.2));
      pt
    | None -> desired
  in
  let gate_positions = ref [] in
  ignore gate_budget_per_bit;
  let build_cone i =
    let s = specs.(i) in
    let base_depth = cluster_depth.(s.r_cluster) in
    let depth =
      let r = Rng.float rng 1.0 in
      if r < 0.04 then 0 (* direct register-to-register wire *)
      else if r < 0.10 then max 1 (base_depth - 1)
      else if r < 0.16 then min 4 (base_depth + 1)
      else base_depth
    in
    let src_net, src_pos =
      if Rng.chance rng 0.03 then (Rng.pick rng in_nets, Point.origin)
      else random_source i
    in
    if depth = 0 then src_net
    else begin
      let cur = ref src_net in
      for level = 1 to depth do
        let kind = Rng.pick rng gate_kinds in
        let attrs = comb_attrs_of kind in
        let extra_inputs =
          List.init (attrs.Types.n_inputs - 1) (fun _ ->
              if Rng.chance rng 0.1 then Rng.pick rng in_nets
              else fst (random_source i))
        in
        let out =
          Design.add_net dsg (Printf.sprintf "n_%d" (Design.n_nets dsg))
        in
        let gid =
          Design.add_comb dsg
            (Printf.sprintf "g%d" !gates_made)
            attrs
            ~inputs:(!cur :: extra_inputs)
            ~output:out
        in
        incr gates_made;
        (* place along the source -> register segment *)
        let fr = float_of_int level /. float_of_int (depth + 1) in
        let base =
          Point.make
            (src_pos.Point.x +. ((s.r_pos.Point.x -. src_pos.Point.x) *. fr))
            (src_pos.Point.y +. ((s.r_pos.Point.y -. src_pos.Point.y) *. fr))
        in
        let jitter =
          Point.make (Rng.float_in rng (-4.0) 4.0) (Rng.float_in rng (-4.0) 4.0)
        in
        let pos = place_gate attrs (Point.add base jitter) in
        gate_positions := (gid, pos) :: !gate_positions;
        cur := out
      done;
      !cur
    end
  in

  (* ---- create register cells ---- *)
  let reg_ids =
    Array.mapi
      (fun i s ->
        let bits = s.r_cell.Cell_lib.bits in
        let d = Array.init bits (fun _ -> Some (build_cone i)) in
        let q = Array.map (fun nid -> Some nid) q_nets.(i) in
        (* flat netlists scramble bit order: q_<i>_<b> no longer sits at
           bit index b, so nothing downstream can read order off names *)
        if p.Profile.flat then Rng.shuffle rng q;
        let conn =
          {
            Design.d_nets = d;
            q_nets = q;
            clock = s.r_clock;
            reset = s.r_reset;
            scan_enable = (if s.r_scan <> None then Some se_net else None);
            scan_ins = [];
            scan_outs = [];
          }
        in
        let attrs =
          Types.
            {
              lib_cell = s.r_cell;
              fixed = s.r_fixed;
              size_only = s.r_size_only;
              scan = s.r_scan;
              gate_enable = s.r_enable;
            }
        in
        let id = Design.add_register dsg (Printf.sprintf "r%d" i) attrs conn in
        Placement.set pl id s.r_pos;
        id)
      specs
  in
  ignore reg_ids;
  List.iter (fun (gid, pos) -> Placement.set pl gid pos) !gate_positions;

  (* ICGs and clock root placed at their fanout centroids *)
  let place_icg (out_net, _, icg) =
    let sink_regs =
      Array.to_list
        (Array.of_seq
           (Seq.filter_map
              (fun i ->
                if specs.(i).r_clock = out_net then Some specs.(i).r_pos else None)
              (Seq.init p.Profile.n_registers Fun.id)))
    in
    let at =
      match sink_regs with
      | [] -> Rect.center core
      | pts -> Point.centroid pts
    in
    Placement.set pl icg (Floorplan.clamp_ll fp ~w:2.0 ~h:1.2 at)
  in
  List.iter place_icg gated;
  (match Design.find_cell dsg "u_clk_root" with
  | Some id -> Placement.set pl id (Rect.center core)
  | None -> ());

  (* output ports on dangling Q nets *)
  let n_out = ref 0 in
  Array.iteri
    (fun i nets ->
      ignore i;
      Array.iter
        (fun nid ->
          if Design.sinks dsg nid = [] && Rng.chance rng 0.4 then begin
            let pid =
              Design.add_port dsg (Printf.sprintf "po%d" !n_out) Types.Out_port nid
            in
            incr n_out;
            (* pin on the boundary nearest the driver *)
            let edge_pt =
              Point.make core_side (Rng.float_in rng 0.0 core_side)
            in
            Placement.set pl pid edge_pt
          end)
        nets)
    q_nets;
  (* input ports placed on the left edge *)
  Array.iter
    (fun nid ->
      match Design.driver dsg nid with
      | Some pid ->
        let cid = (Design.pin dsg pid).Types.p_cell in
        Placement.set pl cid (Point.make 0.0 (Rng.float_in rng 0.0 core_side))
      | None -> ())
    in_nets;
  (match Design.find_cell dsg "rst_n" with
  | Some id -> Placement.set pl id (Point.make 0.0 0.0)
  | None -> ());
  (match Design.find_cell dsg "scan_en" with
  | Some id -> Placement.set pl id (Point.make 0.0 core_side)
  | None -> ());

  (* scan chains: one stitched chain per partition (the paper's §2 scan
     constraints are meaningful only on designs that actually carry
     chains) *)
  let _stitch = Mbr_dft.Scan_stitch.stitch pl in

  (* ---- clock-period calibration against the failing-endpoint target ---- *)
  let probe_cfg = { Engine.default_config with Engine.clock_period = 100000.0 } in
  let eng = Engine.build ~config:probe_cfg pl in
  Engine.analyze eng;
  let slacks = List.map snd (Engine.endpoint_slacks eng) in
  let period =
    match slacks with
    | [] -> Engine.default_config.Engine.clock_period
    | _ ->
      let vs =
        Array.of_list (List.map (fun s -> 100000.0 -. s) slacks)
      in
      let keep = (1.0 -. p.Profile.failing_frac) *. 100.0 in
      Mbr_util.Stats.percentile vs keep
  in
  let sta_config = { Engine.default_config with Engine.clock_period = period } in
  let corners = Mbr_sta.Corner.spread_set p.Profile.corner_spread in
  { design = dsg; placement = pl; library = lib; sta_config; corners; profile = p }

let gate_resolver name =
  Array.fold_left
    (fun acc ((g, _, _, _, _, _) as kind) ->
      match acc with
      | Some _ -> acc
      | None -> if g = name then Some (comb_attrs_of kind) else None)
    None gate_kinds

let to_global_placement ?(sigma = 1.5) ?(seed = 0x61B41) t =
  let rng = Rng.create seed in
  let pl = t.placement in
  let fp = Placement.floorplan pl in
  let dsg = t.design in
  let moves = ref [] in
  Placement.iter
    (fun cid (p : Point.t) ->
      match (Design.cell dsg cid).Types.c_kind with
      | Types.Register _ | Types.Comb _ ->
        let w, h = Design.cell_size dsg cid in
        let jittered =
          Point.make
            (p.Point.x +. Rng.gaussian rng ~mean:0.0 ~stddev:sigma)
            (p.Point.y +. Rng.gaussian rng ~mean:0.0 ~stddev:sigma)
        in
        moves := (cid, Floorplan.clamp_ll fp ~w ~h jittered) :: !moves
      | Types.Clock_root | Types.Clock_gate _ | Types.Port _ -> ())
    pl;
  List.iter (fun (cid, p) -> Placement.set pl cid p) !moves

let gate_cells () =
  Array.to_list
    (Array.map
       (fun (g, n_inputs, drive_res, intrinsic, input_cap, area) ->
         Mbr_liberty.Liberty_io.
           {
             g_name = g;
             g_inputs = n_inputs;
             g_drive_res = drive_res;
             g_intrinsic = intrinsic;
             g_input_cap = input_cap;
             g_area = area;
           })
       gate_kinds)

let width_histogram dsg =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun cid ->
      let a = Design.reg_attrs dsg cid in
      let b = a.Types.lib_cell.Cell_lib.bits in
      let cur = match Hashtbl.find_opt tbl b with Some n -> n | None -> 0 in
      Hashtbl.replace tbl b (cur + 1))
    (Design.registers dsg);
  List.sort compare (Hashtbl.fold (fun b n acc -> (b, n) :: acc) tbl [])
