module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Cell_lib = Mbr_liberty.Cell
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement
module Rng = Mbr_util.Rng

type config = {
  move_frac : float;
  move_sigma : float;
  retype_frac : float;
  remove_frac : float;
  add_frac : float;
}

let default_config =
  {
    move_frac = 0.10;
    move_sigma = 6.0;
    retype_frac = 0.02;
    remove_frac = 0.01;
    add_frac = 0.01;
  }

type stats = { moved : int; retyped : int; removed : int; added : int }

let total stats = stats.moved + stats.retyped + stats.removed + stats.added

let live_register dsg cid =
  let c = Design.cell dsg cid in
  (not c.Types.c_dead)
  && match c.Types.c_kind with Types.Register _ -> true | _ -> false

let clamp lo hi v = Float.max lo (Float.min hi v)

(* Gaussian jitter clamped to the core — an engineer nudging cells (or
   an incremental placer spreading them); the flow tolerates the
   resulting global-placement-style overlaps. *)
let move_one cfg rng pl core r =
  let p = Placement.location pl r in
  let q =
    Point.make
      (clamp core.Rect.lx core.Rect.hx
         (Rng.gaussian rng ~mean:p.Point.x ~stddev:cfg.move_sigma))
      (clamp core.Rect.ly core.Rect.hy
         (Rng.gaussian rng ~mean:p.Point.y ~stddev:cfg.move_sigma))
  in
  Placement.set pl r q

(* Swap for a pin-compatible sibling of the same class/width/scan
   flavour (a sizing ECO). *)
let retype_one rng dsg lib r =
  let cur = (Design.reg_attrs dsg r).Types.lib_cell in
  let siblings =
    List.filter
      (fun (c : Cell_lib.t) ->
        c.Cell_lib.scan = cur.Cell_lib.scan && c.Cell_lib.name <> cur.Cell_lib.name)
      (Library.cells_of lib ~func_class:cur.Cell_lib.func_class
         ~bits:cur.Cell_lib.bits)
  in
  match siblings with
  | [] -> false
  | _ -> (
    try
      Design.retype_register dsg r (Rng.pick_list rng siblings);
      true
    with Invalid_argument _ -> false)

(* A fresh single-bit register of an existing register's class, clocked
   on that register's clock net, with unconnected D/Q (new state the
   RTL grew; its data cones arrive in a later ECO). The name is derived
   from the design state so identically-seeded perturbations of
   identical designs stay in lockstep. *)
let add_one rng dsg pl lib core =
  match
    List.filter (fun r -> Placement.is_placed pl r) (Design.registers dsg)
  with
  | [] -> false
  | placed -> (
    let template = Rng.pick_list rng placed in
    let cls = (Design.reg_attrs dsg template).Types.lib_cell.Cell_lib.func_class in
    let clock =
      match Design.pin_of dsg template Types.Pin_clock with
      | Some pid -> (Design.pin dsg pid).Types.p_net
      | None -> None
    in
    match (clock, Library.widths lib ~func_class:cls) with
    | None, _ | _, [] -> false
    | Some clk, w0 :: _ -> (
      match
        List.filter
          (fun (c : Cell_lib.t) -> c.Cell_lib.scan = Cell_lib.No_scan)
          (Library.cells_of lib ~func_class:cls ~bits:w0)
      with
      | [] -> false
      | cell :: _ ->
        let name = Printf.sprintf "eco_reg_%d" (Design.n_cells dsg) in
        let attrs =
          {
            Types.lib_cell = cell;
            fixed = false;
            size_only = false;
            scan = None;
            gate_enable = None;
          }
        in
        let conn =
          Design.simple_conn
            ~d:(Array.make cell.Cell_lib.bits None)
            ~q:(Array.make cell.Cell_lib.bits None)
            ~clock:clk
        in
        let id = Design.add_register dsg name attrs conn in
        Placement.set pl id
          (Point.make
             (Rng.float_in rng core.Rect.lx core.Rect.hx)
             (Rng.float_in rng core.Rect.ly core.Rect.hy));
        true))

let perturb ?(config = default_config) rng (g : Generate.t) =
  let dsg = g.Generate.design in
  let pl = g.Generate.placement in
  let lib = g.Generate.library in
  let core = (Placement.floorplan pl).Floorplan.core in
  let regs = Design.registers dsg in
  let n_regs = List.length regs in
  let moved = ref 0 and retyped = ref 0 and removed = ref 0 and added = ref 0 in
  List.iter
    (fun r ->
      if Placement.is_placed pl r && Rng.chance rng config.move_frac then begin
        move_one config rng pl core r;
        incr moved
      end)
    regs;
  List.iter
    (fun r ->
      if live_register dsg r && Rng.chance rng config.retype_frac then
        if retype_one rng dsg lib r then incr retyped)
    regs;
  List.iter
    (fun r ->
      if live_register dsg r && Rng.chance rng config.remove_frac then begin
        Design.remove_cell dsg r;
        Placement.remove pl r;
        incr removed
      end)
    regs;
  let n_new =
    int_of_float (Float.round (config.add_frac *. float_of_int n_regs))
  in
  for _ = 1 to n_new do
    if add_one rng dsg pl lib core then incr added
  done;
  { moved = !moved; retyped = !retyped; removed = !removed; added = !added }
