(** Seeded random ECO perturbations over a generated design — the
    workload the incremental {!Mbr_core.Flow.Session} is measured
    against.

    One {!perturb} call applies a batch of the edits a real engineering
    change order is made of, all through the public design/placement
    APIs so the edit logs record every one of them:

    - {b moves}: a fraction of the placed registers is jittered by a
      clamped Gaussian (incremental-placement drift);
    - {b retypes}: registers swapped for pin-compatible same-width
      siblings (sizing fixes);
    - {b removals}: registers deleted outright (logic pruned; the
      flow's scan-restitch stage repairs any chain this breaks);
    - {b additions}: fresh single-bit registers of an existing class on
      an existing clock net, with unconnected D/Q (new state whose data
      cones arrive in a later ECO).

    Everything is driven by the caller's {!Mbr_util.Rng}, and every
    choice (names included) is a deterministic function of (rng state,
    design state) — so applying identically-seeded perturbations to two
    identical design copies keeps them in lockstep. That is what lets
    the equivalence property compare [Session.recompose] on one copy
    against a from-scratch [Flow.run] on the other, round after
    round. *)

type config = {
  move_frac : float;  (** fraction of placed registers jittered *)
  move_sigma : float;  (** Gaussian stddev of the jitter, µm *)
  retype_frac : float;  (** fraction of registers retyped *)
  remove_frac : float;  (** fraction of registers removed *)
  add_frac : float;  (** new registers per existing register *)
}

val default_config : config
(** The benchmark "10 % perturbation" ECO: 10 % of registers move by a
    6 µm Gaussian, 2 % are retyped, 1 % removed, 1 % added. *)

type stats = { moved : int; retyped : int; removed : int; added : int }

val total : stats -> int

val perturb : ?config:config -> Mbr_util.Rng.t -> Generate.t -> stats
(** Apply one perturbation batch to the design/placement in place. *)
