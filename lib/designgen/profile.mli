(** Knobs of the synthetic-design generator and the five profiles
    calibrated to the paper's Table 1 "Base" rows (at ~1/20 scale; see
    DESIGN.md §2 for the substitution argument).

    The distributions that matter to MBR composition are reproduced per
    design: total register count, composable fraction, initial MBR
    bit-width mix (Fig. 5 "before"), spatial clustering of register
    banks, clock gating domains, scan partitions/order constraints, and
    a slack profile with roughly the paper's ~38 % failing endpoints. *)

type t = {
  name : string;
  n_registers : int;  (** register cells (an n-bit MBR counts once) *)
  composable_frac : float;
      (** fraction not fixed/size-only (Table 1 Comp-Regs / Total-Regs) *)
  width_mix : (int * float) list;
      (** initial bit width -> fraction of register cells *)
  gates_per_reg : float;  (** combinational cells per register *)
  n_gated_domains : int;  (** ICG-gated clock subdomains *)
  ungated_frac : float;  (** registers on the raw clock root *)
  n_scan_partitions : int;
  ordered_scan_frac : float;
      (** fraction of scannable registers inside ordered scan sections *)
  scan_class_frac : float;  (** fraction of registers that are scan flops *)
  latch_frac : float;  (** fraction of registers that are latches (class dlat) *)
  cluster_size_mean : int;  (** registers per placement cluster *)
  target_util : float;  (** placement utilization *)
  failing_frac : float;  (** calibrated fraction of failing endpoints *)
  cross_cluster_frac : float;  (** cones sourced from far-away clusters *)
  flat : bool;
      (** aggregation-hostile generation: clusters mix register
          classes/clocks freely (no module-name-style correlation) and
          bit ordering is randomized — see {!flat} *)
  corner_spread : float;
      (** derate-profile knob: 0 means single typical corner; s > 0
          adds a "derated" corner via {!Mbr_sta.Corner.spread_set} *)
  seed : int;
}

val d1 : t

val d2 : t

val d3 : t
(** D3's published row is similar to D5 but with congestion pressure:
    denser placement. *)

val d4 : t
(** Rich in 8-bit MBRs already (Fig. 5): composition finds less. *)

val d5 : t

val all : t list
(** \[d1; d2; d3; d4; d5\]. *)

val tiny : seed:int -> t
(** A fast small profile for tests and the quickstart example. *)

val flat : seed:int -> t
(** An aggregation-hostile flat netlist: [flat = true], so placement
    clusters mix register classes, clocks and enables with no
    correlation, and per-register bit order is shuffled. Composition
    quality on this family measures how much the flow relies on
    netlist-name structure versus placement and timing. *)

val scaled : t -> float -> t
(** [scaled p f] multiplies the register count by [f] (for quick runs:
    [scaled d1 0.25]). *)
