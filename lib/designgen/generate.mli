(** Synthetic placed-design generation (the repo's stand-in for the
    paper's 28 nm industrial benchmarks; see DESIGN.md §2).

    Given a {!Profile.t}, produces a legal, placed, MBR-rich design:

    - registers drawn from the profile's bit-width mix and functional
      classes (plain / async-reset / scan), grouped into spatial
      clusters of compatible banks (same class, clock domain, scan
      partition), as placed RTL modules would be;
    - a clock root plus ICG-gated subdomains; a shared reset; scan
      partitions with a fraction of ordered scan sections;
    - random combinational cones (1–3 levels) between register banks,
      with a profile-controlled fraction of long cross-cluster paths;
    - everything placed on rows without overlaps;
    - the clock period calibrated so that the profile's target fraction
      of endpoints fails setup (the paper reports ≈38 % failing
      endpoints on its mid-optimization snapshots). *)

type t = {
  design : Mbr_netlist.Design.t;
  placement : Mbr_place.Placement.t;
  library : Mbr_liberty.Library.t;
  sta_config : Mbr_sta.Engine.config;
  corners : Mbr_sta.Corner.t array;
      (** the profile's derate set
          ({!Mbr_sta.Corner.spread_set} of [corner_spread]) — what a
          flow session built from this design should analyze under *)
  profile : Profile.t;
}

val generate : Profile.t -> t
(** Deterministic for a given profile (including its seed). *)

val width_histogram : Mbr_netlist.Design.t -> (int * int) list
(** [(bits, count)] over live registers, ascending bits — the data
    behind Fig. 5. *)

val gate_resolver : string -> Mbr_netlist.Types.comb_attrs option
(** Electrical model of the combinational gate masters this generator
    instantiates (NAND2_X1, INV_X1, ...). Lets netlists exported to
    Verilog be re-imported (see {!Mbr_export.Verilog.of_verilog}). *)

val gate_cells : unit -> Mbr_liberty.Liberty_io.gate list
(** The same gate masters in Liberty form, so an exported library file
    is self-sufficient (see {!Mbr_liberty.Liberty_io.to_liberty}). *)

val to_global_placement : ?sigma:float -> ?seed:int -> t -> unit
(** Turn the legalized placement into a {e global-placement} snapshot:
    every movable cell is jittered by a Gaussian of [sigma] µm (default
    1.5) and taken off the site grid, so cells overlap the way they do
    before detailed placement. The paper applies MBR composition "both
    after global and detailed placement"; this produces the former
    entry point from a generated design. *)
