type t = {
  name : string;
  n_registers : int;
  composable_frac : float;
  width_mix : (int * float) list;
  gates_per_reg : float;
  n_gated_domains : int;
  ungated_frac : float;
  n_scan_partitions : int;
  ordered_scan_frac : float;
  scan_class_frac : float;
  latch_frac : float;
  cluster_size_mean : int;
  target_util : float;
  failing_frac : float;
  cross_cluster_frac : float;
  flat : bool;
  corner_spread : float;
  seed : int;
}

(* Table 1, Base rows, at ~1/20 scale:
   D1: 29 416 regs, 18 332 composable (62 %)
   D2: 37 401 regs, 27 992 composable (75 %)
   D3: 34 519 regs, 21 880 composable (63 %)
   D4: 50 392 regs, 22 017 composable (44 %), 8-bit rich
   D5: 34 519 regs, 21 879 composable (63 %) *)

let d1 =
  {
    name = "D1";
    n_registers = 1470;
    composable_frac = 0.74;
    width_mix = [ (1, 0.42); (2, 0.24); (4, 0.24); (8, 0.10) ];
    gates_per_reg = 5.5;
    n_gated_domains = 3;
    ungated_frac = 0.15;
    n_scan_partitions = 2;
    ordered_scan_frac = 0.15;
    scan_class_frac = 0.40;
    latch_frac = 0.08;
    cluster_size_mean = 22;
    target_util = 0.62;
    failing_frac = 0.38;
    cross_cluster_frac = 0.10;
    flat = false;
    corner_spread = 0.0;
    seed = 0x5EED_D1;
  }

let d2 =
  {
    name = "D2";
    n_registers = 1870;
    composable_frac = 0.88;
    width_mix = [ (1, 0.55); (2, 0.20); (4, 0.15); (8, 0.10) ];
    gates_per_reg = 5.0;
    n_gated_domains = 4;
    ungated_frac = 0.10;
    n_scan_partitions = 3;
    ordered_scan_frac = 0.10;
    scan_class_frac = 0.35;
    latch_frac = 0.08;
    cluster_size_mean = 26;
    target_util = 0.60;
    failing_frac = 0.38;
    cross_cluster_frac = 0.12;
    flat = false;
    corner_spread = 0.0;
    seed = 0x5EED_D2;
  }

let d3 =
  {
    name = "D3";
    n_registers = 1725;
    composable_frac = 0.75;
    width_mix = [ (1, 0.46); (2, 0.24); (4, 0.20); (8, 0.10) ];
    gates_per_reg = 6.5;
    n_gated_domains = 3;
    ungated_frac = 0.12;
    n_scan_partitions = 2;
    ordered_scan_frac = 0.20;
    scan_class_frac = 0.45;
    latch_frac = 0.08;
    cluster_size_mean = 20;
    target_util = 0.72;
    failing_frac = 0.40;
    cross_cluster_frac = 0.15;
    flat = false;
    corner_spread = 0.0;
    seed = 0x5EED_D3;
  }

let d4 =
  {
    name = "D4";
    n_registers = 2520;
    composable_frac = 0.72;
    width_mix = [ (1, 0.24); (2, 0.14); (4, 0.20); (8, 0.42) ];
    gates_per_reg = 6.0;
    n_gated_domains = 5;
    ungated_frac = 0.10;
    n_scan_partitions = 3;
    ordered_scan_frac = 0.15;
    scan_class_frac = 0.40;
    latch_frac = 0.08;
    cluster_size_mean = 24;
    target_util = 0.65;
    failing_frac = 0.36;
    cross_cluster_frac = 0.10;
    flat = false;
    corner_spread = 0.0;
    seed = 0x5EED_D4;
  }

let d5 =
  {
    name = "D5";
    n_registers = 1725;
    composable_frac = 0.82;
    width_mix = [ (1, 0.50); (2, 0.20); (4, 0.20); (8, 0.10) ];
    gates_per_reg = 5.5;
    n_gated_domains = 3;
    ungated_frac = 0.12;
    n_scan_partitions = 2;
    ordered_scan_frac = 0.12;
    scan_class_frac = 0.38;
    latch_frac = 0.08;
    cluster_size_mean = 22;
    target_util = 0.63;
    failing_frac = 0.38;
    cross_cluster_frac = 0.11;
    flat = false;
    corner_spread = 0.0;
    seed = 0x5EED_D5;
  }

let all = [ d1; d2; d3; d4; d5 ]

let tiny ~seed =
  {
    name = "tiny";
    n_registers = 120;
    composable_frac = 0.7;
    width_mix = [ (1, 0.5); (2, 0.25); (4, 0.15); (8, 0.10) ];
    gates_per_reg = 4.0;
    n_gated_domains = 2;
    ungated_frac = 0.2;
    n_scan_partitions = 2;
    ordered_scan_frac = 0.15;
    scan_class_frac = 0.4;
    latch_frac = 0.08;
    cluster_size_mean = 15;
    target_util = 0.55;
    failing_frac = 0.35;
    cross_cluster_frac = 0.1;
    flat = false;
    corner_spread = 0.0;
    seed;
  }

(* Aggregation-hostile: no name/clock/enable correlation between
   spatially-near registers and randomized bit ordering (both applied
   in Generate when [flat] is set), so composition has to earn every
   merge from placement and timing alone. *)
let flat ~seed =
  {
    (tiny ~seed) with
    name = "flat";
    n_registers = 150;
    cluster_size_mean = 12;
    flat = true;
  }

let scaled p f =
  { p with n_registers = max 10 (int_of_float (float_of_int p.n_registers *. f)) }
