(** Exact solver for the paper's ILP (§3.1):

    {v minimize   sum_i w_i x_i
       subject to for every register j: sum_{i : j in M_i} x_i = 1
                  x_i in {0, 1} v}

    i.e. weighted set partitioning over MBR candidates. Because the
    compatibility graph is K-partitioned into blocks of at most 30
    registers (§3), each instance is small and is solved to proven
    optimality by a staged kernel:

    {b 1. Reduction.} Dominated candidates are stripped (an equal
    element set no cheaper, or a split into an equal-or-subset
    candidate plus singletons no dearer — the set-{e covering} subset
    rule is unsound under the equality rows and is not used), and
    candidates forced by uniquely-covered elements are fixed to a
    fixpoint. Both rewrites preserve feasibility, the optimal cost and
    the reported status.

    {b 2. Decomposition.} The surviving candidates split into connected
    components of the candidate-overlap graph; each component is an
    independent subproblem, so one exponential search becomes several
    small ones.

    {b 3. Search.} Per component: a greedy + 1-swap incumbent is seeded
    first; the root LP relaxation ({!Mbr_lp.Simplex}) proves it optimal
    outright when it meets the bound, and otherwise supplies duals for
    reduced-cost variable fixing. The remaining depth-first
    branch-and-bound branches on the uncovered element with the fewest
    {e available} candidates (dynamic fail-first), prunes with the
    dynamic per-element share bound
    [sum_e min_{available c containing e} w_c / |c|], and drops
    revisits of an already-seen covered set at equal-or-higher cost
    (dominance table).

    Work rolls up into the [ilp.*] metrics counters: [bb_nodes],
    [lp_relaxations], [dominated_pruned], [fixed_vars] (unique-cover
    plus reduced-cost fixings) and [components].

    Callers must include a candidate for every element that can stand
    alone (the paper's "Original" singletons), otherwise the instance
    may be infeasible — which is detected and reported, not an error. *)

type candidate = { weight : float; elems : int list }
(** [elems] are register indices in \[0, n_elems); duplicates are
    ignored. Candidates with [weight = infinity] (the paper's
    [n_i >= b_i] case) are skipped by the solver. *)

type problem = { n_elems : int; candidates : candidate array }

type status = Optimal | Feasible | Infeasible

type result = {
  status : status;
  cost : float;
      (** total weight of [chosen]; [nan] when infeasible, or when the
          node limit tripped before any full cover was found *)
  chosen : int list;  (** indices into [candidates], ascending *)
  nodes : int;  (** search-tree nodes explored, across all components *)
}

val solve :
  ?node_limit:int ->
  ?lp_bound:bool ->
  ?reductions:bool ->
  ?cancel:Mbr_util.Cancel.t ->
  ?warm:int list ->
  problem ->
  result
(** [node_limit] (default 2_000_000) caps the search across all
    components; when it trips, the best incumbent found so far (at
    worst the greedy + 1-swap seed) is returned with
    [status = Feasible] — so a [Feasible] result with a non-empty
    [chosen] is always a usable exact cover, just not a proven optimum.
    [lp_bound] (default [true]) computes root LP relaxations for
    pruning and reduced-cost fixing. [reductions] (default [true])
    runs the dominance / unique-cover / component-decomposition pass;
    disabling it is for tests and ablations — the reductions never
    change [status] or [cost] (property-tested), only the work needed
    to get there.

    [cancel] is polled ([Mbr_util.Cancel.check]) exactly once per
    search node, in the same position as the node-limit test, so a
    token that trips at the [m]-th check yields the identical result to
    [~node_limit:(m - 1)] with no token (property-tested): same status,
    cost, chosen set and node count. Cancellation therefore shares the
    node-limit contract above — the incumbent comes back, the proof is
    abandoned. Reductions and root LPs are not interruptible; they are
    polynomial and small per block. A solve whose token tripped bumps
    the [ilp.cancelled] counter.

    [warm] is a warm-start hint: indices into [candidates] believed to
    form an exact cover (typically the chosen set of a previous solve
    of a near-identical instance). Per component, the hint restricted
    to the component's surviving candidates replaces the greedy seed
    as the incumbent — but only when it is pairwise disjoint and covers
    the component exactly (the 1-swap polish still runs on it); each
    component seeded this way bumps [ilp.warm_start_hits]. An invalid
    or reduction-clobbered hint silently falls back to the greedy seed.
    Warm starts never change [status] or the optimal [cost] — only how
    fast the search proves them — though under a tripped [node_limit]
    the returned incumbent may differ (it can only be as good or
    better than the greedy seed). *)

val lp_relaxation : problem -> float option
(** Optimal value of the LP relaxation, [None] when LP-infeasible.
    Exposed for tests and for the benchmark's ILP-vs-LP gap report. *)

val brute_force : problem -> result
(** Exhaustive oracle for tests. Exponential: use only with a handful of
    candidates. *)
