module Bitset = Mbr_util.Bitset

type candidate = { weight : float; elems : int list }

type problem = { n_elems : int; candidates : candidate array }

type status = Optimal | Feasible | Infeasible

type result = { status : status; cost : float; chosen : int list; nodes : int }

let dedup_elems elems = List.sort_uniq compare elems

(* Internal candidate with its element bitset. *)
type cand = { idx : int; w : float; set : Bitset.t; size : int }

let prepare p =
  let cands = ref [] in
  Array.iteri
    (fun idx c ->
      if Float.is_finite c.weight then begin
        let elems = dedup_elems c.elems in
        let set = Bitset.of_list p.n_elems elems in
        if not (Bitset.is_empty set) then
          cands := { idx; w = c.weight; set; size = List.length elems } :: !cands
      end)
    p.candidates;
  Array.of_list (List.rev !cands)

(* Telemetry counters: branch-and-bound work per solve rolls up as
   explored nodes; together with the simplex counters from [Mbr_lp]
   they answer "where did the ILP time go". No-ops when disabled. *)
let m_solves = Mbr_obs.Metrics.counter "ilp.solves"

let m_nodes = Mbr_obs.Metrics.counter "ilp.bb_nodes"

let m_lps = Mbr_obs.Metrics.counter "ilp.lp_relaxations"

let m_limit_hits = Mbr_obs.Metrics.counter "ilp.node_limit_hits"

let lp_relaxation p =
  Mbr_obs.Metrics.incr m_lps;
  let module S = Mbr_lp.Simplex in
  let lp = S.create () in
  let cands = prepare p in
  (* No explicit x <= 1 bounds: every candidate covers at least one
     element, whose equality row already caps its variable at 1 — and
     each bound would otherwise cost a simplex row. *)
  let vars = Array.map (fun c -> S.add_var ~lb:0.0 ~obj:c.w lp) cands in
  let covering = Array.make p.n_elems [] in
  Array.iteri
    (fun k c ->
      Bitset.iter (fun e -> covering.(e) <- (vars.(k), 1.0) :: covering.(e)) c.set)
    cands;
  let feasible = ref true in
  Array.iter
    (fun terms ->
      if terms = [] then feasible := false
      else S.add_constraint lp terms S.Eq 1.0)
    covering;
  if not !feasible then None
  else begin
    match S.solve lp with
    | { S.status = S.Optimal; objective; _ } -> Some objective
    | { S.status = S.Infeasible | S.Unbounded; _ } -> None
  end

(* Depth-first branch-and-bound with O(n)-per-node bookkeeping:

   - branching element: the first uncovered one in a static order
     (fewest covering candidates first — fail-first);
   - lower bound: per-element static share bound,
     sum over uncovered e of min_{c covering e} w_c/|c|.
     The static minimum is taken over ALL candidates covering e, a
     subset-minimum of the available ones, so the bound stays valid
     (weaker but O(1) per element via a prefix table);
   - candidates at the branch element tried cheapest-share first so the
     greedy incumbent appears immediately;
   - root LP-relaxation bound: once the incumbent matches it, the
     search stops with a proven optimum. *)
let solve_raw ~node_limit ~lp_bound p =
  let cands = prepare p in
  let n = p.n_elems in
  let covering = Array.make n [] in
  Array.iteri
    (fun k c -> Bitset.iter (fun e -> covering.(e) <- k :: covering.(e)) c.set)
    cands;
  Array.iteri (fun e l -> covering.(e) <- List.rev l) covering;
  if n = 0 then { status = Optimal; cost = 0.0; chosen = []; nodes = 0 }
  else if Array.exists (fun l -> l = []) covering then
    { status = Infeasible; cost = nan; chosen = []; nodes = 0 }
  else begin
    let share k = cands.(k).w /. float_of_int cands.(k).size in
    let static_min_share =
      Array.map
        (fun ks -> List.fold_left (fun acc k -> Float.min acc (share k)) infinity ks)
        covering
    in
    (* branch order: fewest covering candidates first *)
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b -> compare (List.length covering.(a)) (List.length covering.(b)))
      order;
    (* candidates at each element sorted cheapest share first *)
    let covering_sorted =
      Array.map
        (fun ks -> List.sort (fun a b -> compare (share a) (share b)) ks)
        covering
    in
    let root_lp = if lp_bound then lp_relaxation p else None in
    let best_cost = ref infinity in
    let best_sel = ref None in
    let nodes = ref 0 in
    let limit_hit = ref false in
    let full = Bitset.of_list n (List.init n Fun.id) in
    let proved_by_lp () =
      match root_lp with Some b -> !best_cost <= b +. 1e-9 | None -> false
    in
    let rec branch covered cost selection lb_rest =
      (* lb_rest = static share sum over uncovered elements *)
      incr nodes;
      if !nodes > node_limit then limit_hit := true
      else if proved_by_lp () then ()
      else if Bitset.equal covered full then begin
        if cost < !best_cost then begin
          best_cost := cost;
          best_sel := Some selection
        end
      end
      else if cost +. lb_rest < !best_cost -. 1e-9 then begin
        (* first uncovered element in the static order *)
        let rec pick i = if Bitset.mem covered order.(i) then pick (i + 1) else order.(i) in
        let e = pick 0 in
        List.iter
          (fun k ->
            if (not !limit_hit) && not (proved_by_lp ()) then begin
              let c = cands.(k) in
              if Bitset.disjoint c.set covered then begin
                let lb' =
                  Bitset.fold
                    (fun e' acc ->
                      if Bitset.mem covered e' then acc
                      else acc -. static_min_share.(e'))
                    c.set lb_rest
                in
                branch (Bitset.union covered c.set) (cost +. c.w) (k :: selection) lb'
              end
            end)
          covering_sorted.(e)
      end
    in
    let lb0 = Array.fold_left ( +. ) 0.0 static_min_share in
    branch (Bitset.create n) 0.0 [] lb0;
    match !best_sel with
    | None ->
      let status = if !limit_hit then Feasible else Infeasible in
      { status; cost = nan; chosen = []; nodes = !nodes }
    | Some sel ->
      let chosen = List.sort compare (List.map (fun k -> cands.(k).idx) sel) in
      let status = if !limit_hit then Feasible else Optimal in
      { status; cost = !best_cost; chosen; nodes = !nodes }
  end

let solve ?(node_limit = 2_000_000) ?(lp_bound = true) p =
  Mbr_obs.Metrics.incr m_solves;
  let r =
    Mbr_obs.Trace.with_span ~name:"ilp.solve"
      ~args:
        [
          ("n_elems", Mbr_obs.Trace.Int p.n_elems);
          ("n_cands", Mbr_obs.Trace.Int (Array.length p.candidates));
        ]
      (fun () -> solve_raw ~node_limit ~lp_bound p)
  in
  Mbr_obs.Metrics.incr ~by:r.nodes m_nodes;
  (* [Feasible] only ever arises from the node limit tripping. *)
  if r.status = Feasible then Mbr_obs.Metrics.incr m_limit_hits;
  r

let brute_force p =
  let cands = prepare p in
  let n = p.n_elems in
  let m = Array.length cands in
  if m > 25 then invalid_arg "Set_partition.brute_force: too many candidates";
  let full = Bitset.of_list n (List.init n Fun.id) in
  let best_cost = ref infinity in
  let best_sel = ref None in
  for mask = 0 to (1 lsl m) - 1 do
    let covered = ref (Bitset.create n) in
    let cost = ref 0.0 in
    let ok = ref true in
    for k = 0 to m - 1 do
      if mask land (1 lsl k) <> 0 then begin
        if not (Bitset.disjoint !covered cands.(k).set) then ok := false
        else begin
          covered := Bitset.union !covered cands.(k).set;
          cost := !cost +. cands.(k).w
        end
      end
    done;
    if !ok && Bitset.equal !covered full && !cost < !best_cost then begin
      best_cost := !cost;
      best_sel := Some mask
    end
  done;
  match !best_sel with
  | None -> { status = Infeasible; cost = nan; chosen = []; nodes = 1 lsl m }
  | Some mask ->
    let chosen = ref [] in
    for k = m - 1 downto 0 do
      if mask land (1 lsl k) <> 0 then chosen := cands.(k).idx :: !chosen
    done;
    { status = Optimal; cost = !best_cost; chosen = !chosen; nodes = 1 lsl m }
