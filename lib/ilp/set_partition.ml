module Bitset = Mbr_util.Bitset
module Uf = Mbr_util.Union_find

type candidate = { weight : float; elems : int list }

type problem = { n_elems : int; candidates : candidate array }

type status = Optimal | Feasible | Infeasible

type result = { status : status; cost : float; chosen : int list; nodes : int }

let dedup_elems elems = List.sort_uniq compare elems

(* Internal candidate with its element bitset. *)
type cand = { idx : int; w : float; set : Bitset.t; size : int }

let share c = c.w /. float_of_int c.size

let prepare p =
  let cands = ref [] in
  Array.iteri
    (fun idx c ->
      if Float.is_finite c.weight then begin
        let elems = dedup_elems c.elems in
        let set = Bitset.of_list p.n_elems elems in
        if not (Bitset.is_empty set) then
          cands := { idx; w = c.weight; set; size = List.length elems } :: !cands
      end)
    p.candidates;
  Array.of_list (List.rev !cands)

(* Telemetry counters: branch-and-bound work per solve rolls up as
   explored nodes; the reduction counters say how much of the problem
   never reached the search (dominated candidates stripped, variables
   fixed by unique cover or root-LP reduced costs, independent
   components solved separately). Together with the simplex counters
   from [Mbr_lp] they answer "where did the ILP time go". No-ops when
   disabled. *)
let m_solves = Mbr_obs.Metrics.counter "ilp.solves"

let m_nodes = Mbr_obs.Metrics.counter "ilp.bb_nodes"

let m_lps = Mbr_obs.Metrics.counter "ilp.lp_relaxations"

let m_limit_hits = Mbr_obs.Metrics.counter "ilp.node_limit_hits"

let m_dominated = Mbr_obs.Metrics.counter "ilp.dominated_pruned"

let m_components = Mbr_obs.Metrics.counter "ilp.components"

let m_fixed = Mbr_obs.Metrics.counter "ilp.fixed_vars"

let m_cancelled = Mbr_obs.Metrics.counter "ilp.cancelled"

let m_warm_hits = Mbr_obs.Metrics.counter "ilp.warm_start_hits"

(* ---- LP relaxation (shared by the public entry point and the
   per-component root bound) ---- *)

(* Solve the LP relaxation restricted to the equality rows of [elems],
   over already-prepared candidates. Returns the objective and the
   dual of every row indexed by element id; [None] when some element
   of [elems] has no covering candidate or the LP solve fails. *)
let lp_over ~n_elems ~elems (cands : cand array) =
  Mbr_obs.Metrics.incr m_lps;
  let module S = Mbr_lp.Simplex in
  let lp = S.create () in
  (* No explicit x <= 1 bounds: every candidate covers at least one
     element, whose equality row already caps its variable at 1 — and
     each bound would otherwise cost a simplex row. *)
  let vars = Array.map (fun c -> S.add_var ~lb:0.0 ~obj:c.w lp) cands in
  let covering = Array.make (max 1 n_elems) [] in
  Array.iteri
    (fun k c ->
      Bitset.iter (fun e -> covering.(e) <- (vars.(k), 1.0) :: covering.(e)) c.set)
    cands;
  if List.exists (fun e -> covering.(e) = []) elems then None
  else begin
    List.iter (fun e -> S.add_constraint lp covering.(e) S.Eq 1.0) elems;
    match S.solve lp with
    | { S.status = S.Optimal; objective; duals; _ } ->
      let y = Array.make (max 1 n_elems) 0.0 in
      List.iteri (fun i e -> y.(e) <- duals.(i)) elems;
      Some (objective, y)
    | { S.status = S.Infeasible | S.Unbounded; _ } -> None
  end

let lp_relaxation p =
  let cands = prepare p in
  match lp_over ~n_elems:p.n_elems ~elems:(List.init p.n_elems Fun.id) cands with
  | Some (obj, _) -> Some obj
  | None -> None

(* ---- greedy + 1-swap incumbent ---- *)

let greedy_order (cands : cand array) =
  let a = Array.copy cands in
  Array.sort
    (fun c1 c2 ->
      match compare (share c1) (share c2) with
      | 0 -> ( match compare c1.w c2.w with 0 -> compare c1.idx c2.idx | c -> c)
      | c -> c)
    a;
  a

(* Commit disjoint candidates cheapest share first, extending the
   partial selection [sel0]/[covered0]. [None] unless [target] is
   reached exactly. *)
let greedy_from ~(order : cand array) ~target covered0 cost0 sel0 =
  let covered = ref covered0 and cost = ref cost0 and sel = ref sel0 in
  Array.iter
    (fun c ->
      if Bitset.disjoint c.set !covered then begin
        covered := Bitset.union !covered c.set;
        cost := !cost +. c.w;
        sel := c :: !sel
      end)
    order;
  if Bitset.equal !covered target then Some (!cost, !sel) else None

(* 1-swap local search on an exact cover: force one non-selected
   candidate in, evict the picks it overlaps, greedily repair the gap,
   keep strict improvements. A few passes are plenty — this only seeds
   the branch-and-bound incumbent. *)
let improve_1swap ~(order : cand array) ~target ((cost0, sel0) : float * cand list) =
  let best = ref (cost0, sel0) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 4 do
    improved := false;
    incr rounds;
    Array.iter
      (fun c ->
        let bcost, bsel = !best in
        if not (List.exists (fun s -> s.idx = c.idx) bsel) then begin
          let keep = List.filter (fun s -> Bitset.disjoint s.set c.set) bsel in
          let cost = List.fold_left (fun a s -> a +. s.w) c.w keep in
          if cost < bcost -. 1e-12 then begin
            let covered =
              List.fold_left (fun a s -> Bitset.union a s.set) c.set keep
            in
            match greedy_from ~order ~target covered cost (c :: keep) with
            | Some (nc, nsel) when nc < bcost -. 1e-12 ->
              best := (nc, nsel);
              improved := true
            | Some _ | None -> ()
          end
        end)
      order
  done;
  !best

(* ---- reduction pass ---- *)

(* Dominance: a candidate is redundant when its element set can be
   rebuilt no more expensively from other candidates that any solution
   could use in its place. Sound rules under the *equality* (exact
   cover) constraints — note that the set-covering rule "drop a subset
   at >= weight" is NOT sound here, because the superset may conflict
   with the rest of a partition:
     - equal set, higher weight (ties keep the lowest index);
     - the set splits into one equal-or-subset candidate plus
       singletons for the rest, at total weight <= the candidate's
       (the pure all-singletons split is the subset = empty case).
   Dropping such a candidate rewrites any solution using it into one
   of equal or lower cost, so feasibility, the optimal cost and the
   solver's status are all preserved. *)
let dominance_prune ~n_elems (cands : cand array) =
  let m = Array.length cands in
  let alive = Array.make m true in
  let by_set : (int list, int) Hashtbl.t = Hashtbl.create (2 * m) in
  Array.iteri
    (fun k c ->
      let key = Bitset.elements c.set in
      match Hashtbl.find_opt by_set key with
      | None -> Hashtbl.replace by_set key k
      | Some j ->
        if cands.(j).w <= c.w then alive.(k) <- false
        else begin
          alive.(j) <- false;
          Hashtbl.replace by_set key k
        end)
    cands;
  (* cheapest surviving singleton per element *)
  let single = Array.make n_elems infinity in
  Array.iteri
    (fun k c ->
      if alive.(k) && c.size = 1 then
        Bitset.iter (fun e -> if c.w < single.(e) then single.(e) <- c.w) c.set)
    cands;
  let singles_over set = Bitset.fold (fun e acc -> acc +. single.(e)) set 0.0 in
  for k = 0 to m - 1 do
    let c = cands.(k) in
    if alive.(k) && c.size >= 2 then begin
      if singles_over c.set <= c.w then alive.(k) <- false
      else
        (* one smaller candidate + singletons for the remainder *)
        let j = ref 0 in
        while alive.(k) && !j < m do
          let b = cands.(!j) in
          if
            !j <> k && alive.(!j) && b.size >= 2 && b.size < c.size
            && Bitset.subset b.set c.set
            && b.w +. singles_over (Bitset.diff c.set b.set) <= c.w
          then alive.(k) <- false;
          incr j
        done
    end
  done;
  let dropped = ref 0 in
  Array.iter (fun a -> if not a then incr dropped) alive;
  Mbr_obs.Metrics.incr ~by:!dropped m_dominated;
  if !dropped = 0 then cands
  else begin
    let out = ref [] in
    for k = m - 1 downto 0 do
      if alive.(k) then out := cands.(k) :: !out
    done;
    Array.of_list !out
  end

(* Unique-cover fixing to a fixpoint: an element covered by exactly one
   candidate forces that candidate into the solution, which in turn
   kills every candidate it overlaps. Returns the forced picks, the
   surviving free candidates, and whether a contradiction (an element
   left with no cover) was reached. *)
let fix_unique ~n_elems (cands : cand array) =
  let m = Array.length cands in
  let alive = Array.make m true in
  let covered = ref (Bitset.create n_elems) in
  let forced = ref [] in
  let infeasible = ref false in
  let progress = ref true in
  while !progress && not !infeasible do
    progress := false;
    for e = 0 to n_elems - 1 do
      if not (!infeasible || Bitset.mem !covered e) then begin
        let cnt = ref 0 and last = ref (-1) in
        for k = 0 to m - 1 do
          if alive.(k) && Bitset.mem cands.(k).set e then begin
            incr cnt;
            last := k
          end
        done;
        if !cnt = 0 then infeasible := true
        else if !cnt = 1 then begin
          let c = cands.(!last) in
          covered := Bitset.union !covered c.set;
          forced := c :: !forced;
          alive.(!last) <- false;
          for k = 0 to m - 1 do
            if alive.(k) && not (Bitset.disjoint cands.(k).set c.set) then
              alive.(k) <- false
          done;
          progress := true
        end
      end
    done
  done;
  let forced = List.rev !forced in
  Mbr_obs.Metrics.incr ~by:(List.length forced) m_fixed;
  let free = ref [] in
  for k = m - 1 downto 0 do
    if alive.(k) then free := cands.(k) :: !free
  done;
  (forced, Array.of_list !free, !infeasible)

(* Connected components of the candidate-overlap graph: candidates
   sharing an element must agree on who covers it, so the ILP splits
   into an independent subproblem per component. Components are
   returned ordered by their smallest candidate position —
   deterministic regardless of union-find internals. *)
let split_components (cands : cand array) =
  let m = Array.length cands in
  if m = 0 then []
  else begin
    let uf = Uf.create m in
    let n = Bitset.universe_size cands.(0).set in
    let seen = Array.make n (-1) in
    Array.iteri
      (fun k c ->
        Bitset.iter
          (fun e -> if seen.(e) < 0 then seen.(e) <- k else Uf.union uf seen.(e) k)
          c.set)
      cands;
    let groups = List.sort
        (fun a b -> compare (List.hd a) (List.hd b))
        (Array.to_list (Uf.groups uf))
    in
    List.map (fun g -> Array.of_list (List.map (fun k -> cands.(k)) g)) groups
  end

(* ---- per-component branch-and-bound ---- *)

(* Components this small are cheaper to branch than to price: the
   simplex setup alone outweighs the handful of nodes the search
   needs. *)
let lp_min_cands = 9

(* Cap on the per-element availability count of the fail-first scan:
   past a few available candidates the element is not the bottleneck,
   so stop counting and move on. *)
let avail_cap = 3

(* Cap on the covered-set dominance table, per component. *)
let table_cap = 1 lsl 16

type comp_result =
  | C_opt of float * cand list  (* proven optimal over the component *)
  | C_inc of float * cand list  (* node budget tripped; best incumbent *)
  | C_none  (* budget tripped with no full cover found *)
  | C_infeasible

(* A warm hint is a set of original candidate indices believed to form
   an exact cover (typically the previous solve of a near-identical
   block). Restricted to this component's survivors, it is usable only
   when it is pairwise disjoint and covers the component's target
   exactly — reductions may have dropped a hinted candidate, in which
   case the hint silently gives way to the greedy seed. *)
let warm_incumbent ~target (comp0 : cand array) warm =
  match warm with
  | None -> None
  | Some tbl ->
    let sel =
      Array.fold_left
        (fun acc c -> if Hashtbl.mem tbl c.idx then c :: acc else acc)
        [] comp0
    in
    if sel = [] then None
    else begin
      let n = Bitset.universe_size target in
      let covered = ref (Bitset.create n) in
      let cost = ref 0.0 in
      let ok = ref true in
      List.iter
        (fun c ->
          if not (Bitset.disjoint c.set !covered) then ok := false
          else begin
            covered := Bitset.union !covered c.set;
            cost := !cost +. c.w
          end)
        sel;
      if !ok && Bitset.equal !covered target then Some (!cost, sel) else None
    end

(* Solve one connected component. [nodes] is the global node counter
   shared across components; the budget [node_limit] applies to the
   whole solve, so a component entered with an exhausted budget falls
   back to its greedy/1-swap incumbent immediately. [poll] is the
   cancellation check, called exactly once per search node in the same
   position as the node-limit test — a tripped token therefore behaves
   bit-for-bit like an exhausted node budget (property-tested), and the
   incumbent seeded before the search is what a cancelled component
   returns. *)
let solve_component ~lp_bound ~node_limit ~poll ~nodes ~warm
    (comp0 : cand array) =
  let n_elems = Bitset.universe_size comp0.(0).set in
  let target =
    Array.fold_left (fun acc c -> Bitset.union acc c.set) (Bitset.create n_elems)
      comp0
  in
  let elems = Bitset.elements target in
  let order = greedy_order comp0 in
  let incumbent =
    match warm_incumbent ~target comp0 warm with
    | Some wi ->
      Mbr_obs.Metrics.incr m_warm_hits;
      Some (improve_1swap ~order ~target wi)
    | None -> (
      match greedy_from ~order ~target (Bitset.create n_elems) 0.0 [] with
      | Some inc -> Some (improve_1swap ~order ~target inc)
      | None -> None)
  in
  let lp =
    if lp_bound && Array.length comp0 >= lp_min_cands then
      lp_over ~n_elems ~elems comp0
    else None
  in
  match (incumbent, lp) with
  | Some (c, sel), Some (z, _) when c <= z +. 1e-9 ->
    (* the incumbent meets the relaxation bound: optimal, no search *)
    C_opt (c, sel)
  | _ ->
    (* Reduced-cost variable fixing off the root LP duals: a candidate
       whose fixing-to-1 bound [z + rc] already exceeds the incumbent
       cannot appear in any improving solution, so the search never
       needs to see it. Incumbent members are always kept, which also
       shields the fixing from dual round-off. *)
    let comp =
      match (incumbent, lp) with
      | Some (ub, sel), Some (z, y) ->
        let fixed = ref 0 in
        let keep =
          List.filter
            (fun c ->
              List.exists (fun s -> s.idx = c.idx) sel
              ||
              let rc =
                Float.max 0.0
                  (c.w -. Bitset.fold (fun e acc -> acc +. y.(e)) c.set 0.0)
              in
              if z +. rc > ub +. 1e-7 then begin
                incr fixed;
                false
              end
              else true)
            (Array.to_list comp0)
        in
        Mbr_obs.Metrics.incr ~by:!fixed m_fixed;
        Array.of_list keep
      | _ -> comp0
    in
    let covering = Array.make n_elems [] in
    Array.iter
      (fun c -> Bitset.iter (fun e -> covering.(e) <- c :: covering.(e)) c.set)
      comp;
    List.iter
      (fun e ->
        covering.(e) <-
          List.sort
            (fun c1 c2 ->
              match compare (share c1) (share c2) with
              | 0 -> (
                match compare c1.w c2.w with 0 -> compare c1.idx c2.idx | c -> c)
              | c -> c)
            covering.(e))
      elems;
    let best_cost = ref (match incumbent with Some (c, _) -> c | None -> infinity) in
    let best_sel = ref (match incumbent with Some (_, s) -> Some s | None -> None) in
    let limit_hit = ref false in
    let table : (Bitset.t, float) Hashtbl.t = Hashtbl.create 512 in
    let proved_by_lp () =
      match lp with Some (z, _) -> !best_cost <= z +. 1e-9 | None -> false
    in
    let rec branch covered cost sel =
      incr nodes;
      if !nodes > node_limit || poll () then limit_hit := true
      else if proved_by_lp () then ()
      else if Bitset.equal covered target then begin
        if cost < !best_cost -. 1e-12 then begin
          best_cost := cost;
          best_sel := Some sel
        end
      end
      else begin
        (* visited-covered-set dominance: the branch element is a
           function of the covered set alone, so a revisit at
           equal-or-higher cost explores a subtree that cannot beat the
           first visit's *)
        let dominated =
          match Hashtbl.find_opt table covered with
          | Some c -> cost >= c -. 1e-12
          | None -> false
        in
        if not dominated then begin
          if Hashtbl.mem table covered || Hashtbl.length table < table_cap then
            Hashtbl.replace table covered cost;
          (* one pass over the uncovered elements: the dynamic lower
             bound sums each element's cheapest *available* share (the
             static all-candidates minimum is only a lower bound on
             this), and the element with the fewest available
             candidates becomes the branch point (dynamic fail-first).
             An element with none is a dead end. *)
          let lb = ref 0.0 in
          let dead = ref false in
          let branch_e = ref (-1) in
          let branch_avail = ref max_int in
          List.iter
            (fun e ->
              if not (!dead || Bitset.mem covered e) then begin
                let rec scan cnt ms = function
                  | [] -> (cnt, ms)
                  | c :: rest ->
                    if cnt >= avail_cap then (cnt, ms)
                    else if Bitset.disjoint c.set covered then
                      scan (cnt + 1) (if cnt = 0 then share c else ms) rest
                    else scan cnt ms rest
                in
                let cnt, min_share = scan 0 infinity covering.(e) in
                if cnt = 0 then dead := true
                else begin
                  lb := !lb +. min_share;
                  if cnt < !branch_avail then begin
                    branch_avail := cnt;
                    branch_e := e
                  end
                end
              end)
            elems;
          if (not !dead) && cost +. !lb < !best_cost -. 1e-9 then
            List.iter
              (fun c ->
                if
                  (not !limit_hit) && (not (proved_by_lp ()))
                  && Bitset.disjoint c.set covered
                then branch (Bitset.union covered c.set) (cost +. c.w) (c :: sel))
              covering.(!branch_e)
        end
      end
    in
    branch (Bitset.create n_elems) 0.0 [];
    if !limit_hit then
      match !best_sel with
      | Some s -> C_inc (!best_cost, s)
      | None -> C_none
    else
      match !best_sel with
      | Some s -> C_opt (!best_cost, s)
      | None -> C_infeasible

(* ---- the staged solve: reduce, decompose, search ---- *)

let solve_raw ~node_limit ~lp_bound ~reductions ~poll ~warm p cands =
  let n = p.n_elems in
  if n = 0 then { status = Optimal; cost = 0.0; chosen = []; nodes = 0 }
  else begin
    let cover_cnt = Array.make n 0 in
    Array.iter
      (fun c -> Bitset.iter (fun e -> cover_cnt.(e) <- cover_cnt.(e) + 1) c.set)
      cands;
    if Array.exists (fun c -> c = 0) cover_cnt then
      { status = Infeasible; cost = nan; chosen = []; nodes = 0 }
    else begin
      let forced, free, infeasible =
        if reductions then
          fix_unique ~n_elems:n (dominance_prune ~n_elems:n cands)
        else ([], cands, false)
      in
      if infeasible then { status = Infeasible; cost = nan; chosen = []; nodes = 0 }
      else begin
        let comps =
          if reductions then split_components free
          else if Array.length free = 0 then []
          else [ free ]
        in
        Mbr_obs.Metrics.incr ~by:(List.length comps) m_components;
        let nodes = ref 0 in
        let limit = ref false in
        let failed = ref false in
        let comp_infeasible = ref false in
        let cost = ref 0.0 in
        let sel = ref [] in
        List.iter
          (fun comp ->
            if not !comp_infeasible then
              match
                solve_component ~lp_bound ~node_limit ~poll ~nodes ~warm comp
              with
              | C_opt (c, s) ->
                cost := !cost +. c;
                sel := s @ !sel
              | C_inc (c, s) ->
                limit := true;
                cost := !cost +. c;
                sel := s @ !sel
              | C_none ->
                limit := true;
                failed := true
              | C_infeasible -> comp_infeasible := true)
          comps;
        if !comp_infeasible then
          { status = Infeasible; cost = nan; chosen = []; nodes = !nodes }
        else if !failed then
          (* budget gone before any full cover of some component: there
             is no incumbent to assemble, only the limit to report *)
          { status = Feasible; cost = nan; chosen = []; nodes = !nodes }
        else begin
          let cost = List.fold_left (fun a (c : cand) -> a +. c.w) !cost forced in
          let chosen =
            List.sort compare (List.map (fun (c : cand) -> c.idx) (forced @ !sel))
          in
          let status = if !limit then Feasible else Optimal in
          { status; cost; chosen; nodes = !nodes }
        end
      end
    end
  end

let solve ?(node_limit = 2_000_000) ?(lp_bound = true) ?(reductions = true)
    ?cancel ?(warm = []) p =
  Mbr_obs.Metrics.incr m_solves;
  let poll =
    match cancel with
    | None -> fun () -> false
    | Some t -> fun () -> Mbr_util.Cancel.check t
  in
  let warm =
    match warm with
    | [] -> None
    | idxs ->
      let tbl = Hashtbl.create (List.length idxs) in
      List.iter (fun i -> Hashtbl.replace tbl i ()) idxs;
      Some tbl
  in
  let r =
    Mbr_obs.Trace.with_span ~name:"ilp.solve"
      ~args:
        [
          ("n_elems", Mbr_obs.Trace.Int p.n_elems);
          ("n_cands", Mbr_obs.Trace.Int (Array.length p.candidates));
        ]
      (fun () ->
        (* prepare once: the same candidate array feeds the reduction
           pass, every component's root LP and the branch-and-bound *)
        let cands = prepare p in
        solve_raw ~node_limit ~lp_bound ~reductions ~poll ~warm p cands)
  in
  Mbr_obs.Metrics.incr ~by:r.nodes m_nodes;
  (* [Feasible] only ever arises from the node limit tripping. *)
  if r.status = Feasible then Mbr_obs.Metrics.incr m_limit_hits;
  (match cancel with
  | Some t when Mbr_util.Cancel.cancelled t -> Mbr_obs.Metrics.incr m_cancelled
  | _ -> ());
  r

let brute_force p =
  let cands = prepare p in
  let n = p.n_elems in
  let m = Array.length cands in
  if m > 25 then invalid_arg "Set_partition.brute_force: too many candidates";
  let full = Bitset.of_list n (List.init n Fun.id) in
  let best_cost = ref infinity in
  let best_sel = ref None in
  for mask = 0 to (1 lsl m) - 1 do
    let covered = ref (Bitset.create n) in
    let cost = ref 0.0 in
    let ok = ref true in
    for k = 0 to m - 1 do
      if mask land (1 lsl k) <> 0 then begin
        if not (Bitset.disjoint !covered cands.(k).set) then ok := false
        else begin
          covered := Bitset.union !covered cands.(k).set;
          cost := !cost +. cands.(k).w
        end
      end
    done;
    if !ok && Bitset.equal !covered full && !cost < !best_cost then begin
      best_cost := !cost;
      best_sel := Some mask
    end
  done;
  match !best_sel with
  | None -> { status = Infeasible; cost = nan; chosen = []; nodes = 1 lsl m }
  | Some mask ->
    let chosen = ref [] in
    for k = m - 1 downto 0 do
      if mask land (1 lsl k) <> 0 then chosen := cands.(k).idx :: !chosen
    done;
    { status = Optimal; cost = !best_cost; chosen = !chosen; nodes = 1 lsl m }
