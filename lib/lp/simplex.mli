(** Dense two-phase primal simplex for small/medium linear programs.

    Built in-repo because no LP/ILP bindings are available offline (see
    DESIGN.md §2). Serves two clients: the LP relaxation bound inside the
    branch-and-bound ILP solver ({!Mbr_ilp}), and the wirelength-
    minimizing MBR placement LP of the paper's §4.2 (where [max]/[min]
    terms are linearized with helper variables by the caller).

    Problems are stated as: minimize [c·x] subject to rows
    [a_i·x (<=|=|>=) b_i] and per-variable bounds. Bland's rule is used
    throughout, so the solver cannot cycle. Sizes up to a few thousand
    variables and a few hundred rows are comfortable. *)

type relation = Le | Ge | Eq

type t
(** A problem under construction (mutable builder). *)

type var = int
(** Variable handle; also the index into the solution vector. *)

val create : unit -> t

val add_var : ?lb:float -> ?ub:float -> ?obj:float -> t -> var
(** New variable with bounds \[[lb], [ub]\] (defaults 0, +inf; [lb] may
    be [neg_infinity] for a free variable) and objective coefficient
    [obj] (default 0). *)

val set_obj : t -> var -> float -> unit
(** Overwrite the objective coefficient. *)

val add_constraint : t -> (var * float) list -> relation -> float -> unit
(** Add a row; repeated variables in the term list are summed. *)

val n_vars : t -> int

type status = Optimal | Infeasible | Unbounded

type solution = {
  status : status;
  objective : float;  (** meaningful only when [status = Optimal] *)
  values : float array;  (** indexed by [var]; length [n_vars] *)
  duals : float array;
      (** simplex multiplier of every constraint, in {!add_constraint}
          order; empty unless [status = Optimal]. For a minimization
          over [x >= 0] (all default bounds) the reduced cost of
          variable [j] is [obj_j - sum_i duals_i * a_ij >= 0], with
          equality on basic variables — the input to dual-based
          variable fixing in {!Mbr_ilp.Set_partition}. Rows stated with
          finite upper bounds or free variables still get a multiplier,
          but the complementary-slackness identity then also involves
          the active bound terms. *)
}

val solve : t -> solution
(** Solve the problem as currently stated. The builder is not consumed:
    more rows/variables can be added and [solve] called again (used by
    branch-and-bound to add branching bounds). *)
