type relation = Le | Ge | Eq

type var = int

type row = { terms : (var * float) list; rel : relation; rhs : float }

type t = {
  mutable lbs : float list; (* reversed *)
  mutable ubs : float list; (* reversed *)
  mutable objs : float list; (* reversed *)
  mutable nv : int;
  mutable rows : row list; (* reversed *)
}

type status = Optimal | Infeasible | Unbounded

type solution = {
  status : status;
  objective : float;
  values : float array;
  duals : float array;
}

let create () = { lbs = []; ubs = []; objs = []; nv = 0; rows = [] }

let add_var ?(lb = 0.0) ?(ub = infinity) ?(obj = 0.0) t =
  t.lbs <- lb :: t.lbs;
  t.ubs <- ub :: t.ubs;
  t.objs <- obj :: t.objs;
  let v = t.nv in
  t.nv <- t.nv + 1;
  v

let set_obj t v c =
  let arr = Array.of_list (List.rev t.objs) in
  arr.(v) <- c;
  t.objs <- List.rev (Array.to_list arr)

let add_constraint t terms rel rhs = t.rows <- { terms; rel; rhs } :: t.rows

let n_vars t = t.nv

let eps = 1e-9

let feas_eps = 1e-7

(* Mapping from an original variable to standard-form (>= 0) variables. *)
type encoding =
  | Shifted of int * float (* x = y_k + lb *)
  | Mirrored of int * float (* x = ub - y_k *)
  | Split of int * int (* x = y_pos - y_neg *)

(* Telemetry counters (no-op when Mbr_obs is disabled): the ILP layer's
   "simplex work" roll-up is pivots, the one O(m·n) unit of the
   algorithm. *)
let m_solves = Mbr_obs.Metrics.counter "lp.simplex_solves"

let m_pivots = Mbr_obs.Metrics.counter "lp.simplex_pivots"

let solve t =
  Mbr_obs.Metrics.incr m_solves;
  let nv = t.nv in
  let lbs = Array.of_list (List.rev t.lbs) in
  let ubs = Array.of_list (List.rev t.ubs) in
  let objs = Array.of_list (List.rev t.objs) in
  let user_rows = List.rev t.rows in
  (* 1. Encode original variables as non-negative standard variables. *)
  let n_std = ref 0 in
  let fresh () =
    let k = !n_std in
    incr n_std;
    k
  in
  let enc =
    Array.init nv (fun j ->
        let lb = lbs.(j) and ub = ubs.(j) in
        if lb > ub +. eps then (* empty box -> force infeasibility below *)
          Shifted (fresh (), nan)
        else if Float.is_finite lb then Shifted (fresh (), lb)
        else if Float.is_finite ub then Mirrored (fresh (), ub)
        else begin
          let p = fresh () in
          let n = fresh () in
          Split (p, n)
        end)
  in
  let empty_box = Array.exists (fun j -> lbs.(j) > ubs.(j) +. eps) (Array.init nv Fun.id) in
  if empty_box then
    { status = Infeasible; objective = nan; values = Array.make nv nan; duals = [||] }
  else begin
    (* Extra rows for finite upper bounds of shifted variables. *)
    let bound_rows =
      List.concat
        (List.init nv (fun j ->
             match enc.(j) with
             | Shifted (_, _) when Float.is_finite ubs.(j) ->
               [ { terms = [ (j, 1.0) ]; rel = Le; rhs = ubs.(j) } ]
             | Shifted _ | Mirrored _ | Split _ -> []))
    in
    let all_rows = user_rows @ bound_rows in
    let m = List.length all_rows in
    (* Count slack variables needed. *)
    let n_slack =
      List.fold_left
        (fun acc r -> match r.rel with Le | Ge -> acc + 1 | Eq -> acc)
        0 all_rows
    in
    let n_struct = !n_std in
    let n_total = n_struct + n_slack + m (* + artificials *) in
    let rhs_col = n_total in
    let tab = Array.make_matrix m (n_total + 1) 0.0 in
    let basis = Array.make m (-1) in
    (* 2. Fill structural coefficients, translating the encoding. The
       substitution also shifts the right-hand side. *)
    let slack_idx = ref n_struct in
    List.iteri
      (fun i r ->
        let rhs = ref r.rhs in
        List.iter
          (fun (j, c) ->
            if j < 0 || j >= nv then invalid_arg "Simplex: bad variable";
            match enc.(j) with
            | Shifted (k, lb) ->
              tab.(i).(k) <- tab.(i).(k) +. c;
              rhs := !rhs -. (c *. lb)
            | Mirrored (k, ub) ->
              tab.(i).(k) <- tab.(i).(k) -. c;
              rhs := !rhs -. (c *. ub)
            | Split (p, n) ->
              tab.(i).(p) <- tab.(i).(p) +. c;
              tab.(i).(n) <- tab.(i).(n) -. c)
          r.terms;
        (match r.rel with
        | Le ->
          tab.(i).(!slack_idx) <- 1.0;
          incr slack_idx
        | Ge ->
          tab.(i).(!slack_idx) <- -1.0;
          incr slack_idx
        | Eq -> ());
        tab.(i).(rhs_col) <- !rhs)
      all_rows;
    (* 3. Make every rhs non-negative, then install artificials. The
       negation flips the row's dual sign, so remember it: duals are
       reported for the rows as the caller stated them. *)
    let negated = Array.make m false in
    for i = 0 to m - 1 do
      if tab.(i).(rhs_col) < 0.0 then begin
        negated.(i) <- true;
        for c = 0 to n_total do
          tab.(i).(c) <- -.tab.(i).(c)
        done
      end;
      let art = n_struct + n_slack + i in
      tab.(i).(art) <- 1.0;
      basis.(i) <- art
    done;
    (* Objective rows: phase-2 costs on structural vars; phase-1 costs on
       artificials. Both are kept as reduced-cost rows and updated by the
       same pivots. obj_const accumulates the constant from substitution. *)
    let cost2 = Array.make (n_total + 1) 0.0 in
    let obj_const = ref 0.0 in
    for j = 0 to nv - 1 do
      let c = objs.(j) in
      if c <> 0.0 then
        match enc.(j) with
        | Shifted (k, lb) ->
          cost2.(k) <- cost2.(k) +. c;
          obj_const := !obj_const +. (c *. lb)
        | Mirrored (k, ub) ->
          cost2.(k) <- cost2.(k) -. c;
          obj_const := !obj_const +. (c *. ub)
        | Split (p, n) ->
          cost2.(p) <- cost2.(p) +. c;
          cost2.(n) <- cost2.(n) -. c
    done;
    let cost1 = Array.make (n_total + 1) 0.0 in
    for a = n_struct + n_slack to n_total - 1 do
      cost1.(a) <- 1.0
    done;
    (* Price out the initial basis (artificials) from the phase-1 row. *)
    for i = 0 to m - 1 do
      for c = 0 to n_total do
        cost1.(c) <- cost1.(c) -. tab.(i).(c)
      done
    done;
    let pivot cost_rows prow pcol =
      Mbr_obs.Metrics.incr m_pivots;
      let pr = tab.(prow) in
      let pv = pr.(pcol) in
      for c = 0 to n_total do
        pr.(c) <- pr.(c) /. pv
      done;
      for i = 0 to m - 1 do
        if i <> prow then begin
          let f = tab.(i).(pcol) in
          if Float.abs f > 0.0 then begin
            let ri = tab.(i) in
            for c = 0 to n_total do
              ri.(c) <- ri.(c) -. (f *. pr.(c))
            done
          end
        end
      done;
      List.iter
        (fun cr ->
          let f = cr.(pcol) in
          if Float.abs f > 0.0 then
            for c = 0 to n_total do
              cr.(c) <- cr.(c) -. (f *. pr.(c))
            done)
        cost_rows;
      basis.(prow) <- pcol
    in
    (* Bland's rule iteration on the given reduced-cost row, restricted to
       columns < col_limit (used to bar artificials in phase 2). *)
    let iterate cost cost_rows col_limit =
      let continue_ = ref true in
      let result = ref Optimal in
      while !continue_ do
        (* entering column: smallest index with negative reduced cost *)
        let enter = ref (-1) in
        (try
           for c = 0 to col_limit - 1 do
             if cost.(c) < -.eps then begin
               enter := c;
               raise Exit
             end
           done
         with Exit -> ());
        if !enter < 0 then continue_ := false
        else begin
          let pcol = !enter in
          (* ratio test with Bland tie-break on basis index *)
          let prow = ref (-1) in
          let best = ref infinity in
          for i = 0 to m - 1 do
            let a = tab.(i).(pcol) in
            if a > eps then begin
              let ratio = tab.(i).(rhs_col) /. a in
              if
                ratio < !best -. eps
                || (ratio < !best +. eps && !prow >= 0 && basis.(i) < basis.(!prow))
                || (ratio < !best +. eps && !prow < 0)
              then begin
                best := ratio;
                prow := i
              end
            end
          done;
          if !prow < 0 then begin
            result := Unbounded;
            continue_ := false
          end
          else pivot cost_rows !prow pcol
        end
      done;
      !result
    in
    (* Phase 1. *)
    let st1 = iterate cost1 [ cost1; cost2 ] n_total in
    let phase1_obj = -.cost1.(rhs_col) in
    if st1 = Unbounded || phase1_obj > feas_eps then
      { status = Infeasible; objective = nan; values = Array.make nv nan; duals = [||] }
    else begin
      (* Drive any artificial still in the basis out (it must be at zero). *)
      let n_real = n_struct + n_slack in
      for i = 0 to m - 1 do
        if basis.(i) >= n_real then begin
          let found = ref (-1) in
          (try
             for c = 0 to n_real - 1 do
               if Float.abs tab.(i).(c) > eps then begin
                 found := c;
                 raise Exit
               end
             done
           with Exit -> ());
          if !found >= 0 then pivot [ cost1; cost2 ] i !found
          (* else: redundant row; harmless to leave the zero artificial. *)
        end
      done;
      (* Phase 2, artificial columns barred. *)
      let st2 = iterate cost2 [ cost2 ] n_real in
      match st2 with
      | Unbounded ->
        { status = Unbounded; objective = neg_infinity; values = Array.make nv nan;
          duals = [||] }
      | Infeasible | Optimal ->
        let std_vals = Array.make n_total 0.0 in
        for i = 0 to m - 1 do
          if basis.(i) < n_total then std_vals.(basis.(i)) <- tab.(i).(rhs_col)
        done;
        let values =
          Array.init nv (fun j ->
              match enc.(j) with
              | Shifted (k, lb) -> std_vals.(k) +. lb
              | Mirrored (k, ub) -> ub -. std_vals.(k)
              | Split (p, n) -> std_vals.(p) -. std_vals.(n))
        in
        let objective = -.cost2.(rhs_col) +. !obj_const in
        (* Row i's artificial column is e_i in the (possibly negated)
           row system, so its phase-2 reduced cost is 0 - y·e_i = -y_i:
           the simplex multipliers fall out of the final tableau for
           free. Only the caller's rows are reported; the internal
           upper-bound rows appended after them are not. *)
        let duals =
          Array.init (List.length user_rows) (fun i ->
              let y = -.cost2.(n_struct + n_slack + i) in
              if negated.(i) then -.y else y)
        in
        { status = Optimal; objective; values; duals }
    end
  end
