module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Allocate = Mbr_core.Allocate
module Candidate = Mbr_core.Candidate
module Compat = Mbr_core.Compat
module Weight = Mbr_core.Weight
module Texttab = Mbr_util.Texttab
module Stats = Mbr_util.Stats

type design_run = {
  profile : P.t;
  result : Flow.result;
  hist_before : (int * int) list;
  hist_after : (int * int) list;
  metrics : Mbr_obs.Metrics.snapshot;
}

let run_profile ?(options = Flow.default_options) ?jobs profile =
  let options =
    match jobs with None -> options | Some _ -> { options with Flow.jobs }
  in
  let g = G.generate profile in
  let hist_before = G.width_histogram g.G.design in
  let result =
    Flow.run ~options ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  let hist_after = G.width_histogram g.G.design in
  (* Registry state right after the flow: all zeros unless the caller
     enabled [Mbr_obs.Metrics] (and reset between runs, if it wants
     per-run rather than cumulative numbers). *)
  let metrics = Mbr_obs.Metrics.snapshot () in
  { profile; result; hist_before; hist_after; metrics }

(* ---- Table 1 ---- *)

let table1 runs =
  let tab =
    Texttab.create
      ~headers:
        [
          "Design"; "Row"; "Cells"; "Area um2"; "WL-Clk um"; "WL-Other um";
          "Total Regs"; "Comp Regs"; "Clk Bufs"; "Clk Cap fF"; "Clk Pwr uW";
          "TNS ns"; "Fail EP"; "Ovfl"; "Time s";
        ]
  in
  let metric_row name row (m : Metrics.t) runtime =
    Texttab.add_row tab
      [
        name;
        row;
        Texttab.fmt_int m.Metrics.cells;
        Texttab.fmt_int (int_of_float m.Metrics.area);
        Texttab.fmt_int (int_of_float m.Metrics.clk_wl);
        Texttab.fmt_int (int_of_float m.Metrics.other_wl);
        Texttab.fmt_int m.Metrics.total_regs;
        Texttab.fmt_int m.Metrics.comp_regs;
        Texttab.fmt_int m.Metrics.clk_bufs;
        Texttab.fmt_int (int_of_float m.Metrics.clk_cap);
        Texttab.fmt_int (int_of_float m.Metrics.clk_power);
        Texttab.fmt_float ~dec:2 (m.Metrics.tns /. 1000.0);
        Texttab.fmt_int m.Metrics.failing;
        Texttab.fmt_int m.Metrics.ovfl;
        (match runtime with Some t -> Texttab.fmt_float ~dec:1 t | None -> "-");
      ]
  in
  List.iter
    (fun r ->
      let b = r.result.Flow.before and a = r.result.Flow.after in
      metric_row r.profile.P.name "Base" b None;
      metric_row "" "Ours" a (Some r.result.Flow.runtime_s);
      let pct fmt base v =
        ignore fmt;
        Texttab.fmt_pct (Stats.pct_change base v)
      in
      let f = float_of_int in
      Texttab.add_row tab
        [
          "";
          "Save";
          pct "" (f b.Metrics.cells) (f a.Metrics.cells);
          pct "" b.Metrics.area a.Metrics.area;
          pct "" b.Metrics.clk_wl a.Metrics.clk_wl;
          pct "" b.Metrics.other_wl a.Metrics.other_wl;
          pct "" (f b.Metrics.total_regs) (f a.Metrics.total_regs);
          pct "" (f b.Metrics.comp_regs) (f a.Metrics.comp_regs);
          pct "" (f b.Metrics.clk_bufs) (f a.Metrics.clk_bufs);
          pct "" b.Metrics.clk_cap a.Metrics.clk_cap;
          pct "" b.Metrics.clk_power a.Metrics.clk_power;
          pct "" b.Metrics.tns a.Metrics.tns;
          pct "" (f b.Metrics.failing) (f a.Metrics.failing);
          pct "" (f b.Metrics.ovfl) (f a.Metrics.ovfl);
          "";
        ];
      Texttab.add_sep tab)
    runs;
  Texttab.render tab

let table1_summary runs =
  let avg get =
    Stats.mean
      (Array.of_list
         (List.map
            (fun r ->
              Stats.pct_change
                (get r.result.Flow.before)
                (get r.result.Flow.after))
            runs))
  in
  let f g r = float_of_int (g r) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Average savings across designs (paper's section 5 claims):\n";
  Printf.bprintf buf "  total registers   : %5.1f %%   (paper: 29 %%)\n"
    (avg (f (fun m -> m.Metrics.total_regs)));
  Printf.bprintf buf "  composable regs   : %5.1f %%   (paper: 48 %%)\n"
    (avg (f (fun m -> m.Metrics.comp_regs)));
  Printf.bprintf buf "  clock capacitance : %5.1f %%   (paper:  6 %%)\n"
    (avg (fun m -> m.Metrics.clk_cap));
  Printf.bprintf buf "  clock power       : %5.1f %%   (paper: \"similar\" to cap)\n"
    (avg (fun m -> m.Metrics.clk_power));
  let clk_frac =
    Stats.mean
      (Array.of_list
         (List.map (fun r -> r.result.Flow.before.Metrics.clk_power_frac) runs))
  in
  Printf.bprintf buf
    "  base clock share  : %5.1f %%   (paper intro: 20-40 %% of dynamic)\n"
    (100.0 *. clk_frac);
  Printf.bprintf buf "  clock buffers     : %5.1f %%   (paper:  4 %%)\n"
    (avg (f (fun m -> m.Metrics.clk_bufs)));
  Printf.bprintf buf "  signal wirelength : %5.1f %%   (paper: not increased)\n"
    (avg (fun m -> m.Metrics.other_wl));
  Printf.bprintf buf "  overflow edges    : %5.1f %%   (paper: marginal delta)\n"
    (avg (f (fun m -> m.Metrics.ovfl)));
  let fail_frac =
    Stats.mean
      (Array.of_list
         (List.map
            (fun r ->
              float_of_int r.result.Flow.before.Metrics.failing
              /. float_of_int (max 1 r.result.Flow.before.Metrics.endpoints))
            runs))
  in
  Printf.bprintf buf "  base failing EPs  : %5.1f %%   (paper: ~38 %% of endpoints)\n"
    (100.0 *. fail_frac);
  Buffer.contents buf

(* ---- Fig. 5 ---- *)

let fig5 runs =
  let widths = [ 1; 2; 4; 8 ] in
  let tab =
    Texttab.create
      ~headers:
        ("Design" :: "Row"
        :: List.map (fun w -> Printf.sprintf "%d-bit" w) widths)
  in
  List.iter
    (fun r ->
      let row label hist =
        Texttab.add_row tab
          (label
           :: (match label with "" -> "after" | _ -> "before")
           :: List.map
                (fun w ->
                  match List.assoc_opt w hist with
                  | Some n -> string_of_int n
                  | None -> "0")
                widths)
      in
      row r.profile.P.name r.hist_before;
      row "" r.hist_after;
      Texttab.add_sep tab)
    runs;
  Texttab.render tab

(* ---- Fig. 6 ---- *)

type fig6_row = {
  name : string;
  base_regs : int;
  ilp_regs : int;
  heuristic_regs : int;
}

let fig6 ?jobs profiles =
  let rows =
    List.map
      (fun p ->
        let ilp = run_profile ?jobs p in
        let greedy =
          run_profile ?jobs
            ~options:{ Flow.default_options with Flow.mode = `Greedy_share }
            p
        in
        {
          name = p.P.name;
          base_regs = ilp.result.Flow.before.Metrics.total_regs;
          ilp_regs = ilp.result.Flow.after.Metrics.total_regs;
          heuristic_regs = greedy.result.Flow.after.Metrics.total_regs;
        })
      profiles
  in
  let tab =
    Texttab.create
      ~headers:[ "Design"; "Base"; "Heuristic"; "ILP"; "Heur (norm)"; "ILP (norm)" ]
  in
  List.iter
    (fun r ->
      Texttab.add_row tab
        [
          r.name;
          Texttab.fmt_int r.base_regs;
          Texttab.fmt_int r.heuristic_regs;
          Texttab.fmt_int r.ilp_regs;
          Texttab.fmt_float ~dec:3
            (float_of_int r.heuristic_regs /. float_of_int r.base_regs);
          Texttab.fmt_float ~dec:3
            (float_of_int r.ilp_regs /. float_of_int r.base_regs);
        ])
    rows;
  let gain =
    Stats.mean
      (Array.of_list
         (List.map
            (fun r ->
              Stats.pct_change (float_of_int r.heuristic_regs)
                (float_of_int r.ilp_regs))
            rows))
  in
  let s =
    Texttab.render tab
    ^ Printf.sprintf
        "ILP vs heuristic allocator: %.1f %% fewer registers on average\n\
         (paper Fig. 6: ILP better on all designs, 12 %% on average).\n"
        gain
  in
  (rows, s)

(* ---- Ablations ---- *)

let with_candidate_cfg options f =
  {
    options with
    Flow.allocate =
      {
        options.Flow.allocate with
        Allocate.candidate = f options.Flow.allocate.Allocate.candidate;
      };
  }

let ablation_partition_bound ?jobs profile bounds =
  let tab =
    Texttab.create
      ~headers:[ "Partition bound"; "Final regs"; "Merged"; "Blocks"; "Runtime s" ]
  in
  List.iter
    (fun bound ->
      let options =
        {
          Flow.default_options with
          Flow.allocate = { Allocate.default_config with Allocate.partition_bound = bound };
        }
      in
      let r = run_profile ~options ?jobs profile in
      Texttab.add_row tab
        [
          string_of_int bound;
          Texttab.fmt_int r.result.Flow.after.Metrics.total_regs;
          Texttab.fmt_int r.result.Flow.n_regs_merged;
          Texttab.fmt_int r.result.Flow.n_blocks;
          Texttab.fmt_float ~dec:1 r.result.Flow.runtime_s;
        ])
    bounds;
  Texttab.render tab
  ^ "(paper section 3: below ~20 the QoR drops; above 30 only runtime grows)\n"

let ablation_weights ?jobs profile =
  let run use_weights =
    let options =
      with_candidate_cfg Flow.default_options (fun c ->
          { c with Candidate.use_weights })
    in
    run_profile ~options ?jobs profile
  in
  let w = run true and nw = run false in
  let tab =
    Texttab.create ~headers:[ "Weights"; "Final regs"; "Ovfl edges"; "Signal WL um" ]
  in
  let row label (r : design_run) =
    Texttab.add_row tab
      [
        label;
        Texttab.fmt_int r.result.Flow.after.Metrics.total_regs;
        Texttab.fmt_int r.result.Flow.after.Metrics.ovfl;
        Texttab.fmt_int (int_of_float r.result.Flow.after.Metrics.other_wl);
      ]
  in
  row "placement-aware (paper)" w;
  row "uniform 1/bits (off)" nw;
  Texttab.render tab
  ^ "(without weights the ILP merges intertwined groups: more merges, but\n\
     blocked hulls compete for routing — the paper's section 3.2 rationale)\n"

let ablation_incomplete ?jobs profile =
  let run allow =
    let options =
      with_candidate_cfg Flow.default_options (fun c ->
          { c with Candidate.allow_incomplete = allow })
    in
    run_profile ~options ?jobs profile
  in
  let on = run true and off = run false in
  let tab =
    Texttab.create
      ~headers:[ "Incomplete MBRs"; "Final regs"; "Incomplete used"; "Area um2" ]
  in
  let row label (r : design_run) =
    Texttab.add_row tab
      [
        label;
        Texttab.fmt_int r.result.Flow.after.Metrics.total_regs;
        Texttab.fmt_int r.result.Flow.n_incomplete;
        Texttab.fmt_int (int_of_float r.result.Flow.after.Metrics.area);
      ]
  in
  row "enabled (5% rule)" on;
  row "disabled" off;
  Texttab.render tab

let ablation_global_entry ?jobs profile =
  let run global =
    let g = G.generate profile in
    if global then G.to_global_placement g;
    let options = { Flow.default_options with Flow.jobs } in
    let r =
      Flow.run ~options ~design:g.G.design ~placement:g.G.placement
        ~library:g.G.library ~sta_config:g.G.sta_config ()
    in
    r
  in
  let detailed = run false and global = run true in
  let tab =
    Texttab.create
      ~headers:[ "Entry point"; "Merges"; "Regs merged"; "Final regs"; "Clk cap fF" ]
  in
  let row label (r : Flow.result) =
    Texttab.add_row tab
      [
        label;
        Texttab.fmt_int r.Flow.n_merges;
        Texttab.fmt_int r.Flow.n_regs_merged;
        Texttab.fmt_int r.Flow.after.Metrics.total_regs;
        Texttab.fmt_int (int_of_float r.Flow.after.Metrics.clk_cap);
      ]
  in
  row "detailed placement" detailed;
  row "global placement" global;
  Texttab.render tab
  ^ "(the paper's conclusion: the flow applies at either entry point;\n\
     the global-placement run works with overlapping, off-grid cells)\n"

let ablation_decompose ?jobs profile =
  let run decompose =
    run_profile ~options:{ Flow.default_options with Flow.decompose } ?jobs profile
  in
  let off = run false and on = run true in
  let tab =
    Texttab.create
      ~headers:
        [ "Decompose+recompose"; "Split"; "Final regs"; "Clk cap fF"; "Area um2" ]
  in
  let row label (r : design_run) =
    Texttab.add_row tab
      [
        label;
        Texttab.fmt_int r.result.Flow.n_split;
        Texttab.fmt_int r.result.Flow.after.Metrics.total_regs;
        Texttab.fmt_int (int_of_float r.result.Flow.after.Metrics.clk_cap);
        Texttab.fmt_int (int_of_float r.result.Flow.after.Metrics.area);
      ]
  in
  row "off (paper's experiments)" off;
  row "on (paper's future work)" on;
  Texttab.render tab
  ^ "(the split halves may re-merge with better partners; the paper\n\
     proposes exactly this for designs like D4 that start 8-bit-rich)\n"

let ablation_skew ?jobs profile =
  let run skew =
    let options = { Flow.default_options with Flow.skew; resize = None } in
    run_profile ~options ?jobs profile
  in
  let on = run (Some Mbr_sta.Skew.default_config) and off = run None in
  let tab =
    Texttab.create ~headers:[ "Useful skew"; "TNS ns"; "WNS ps"; "Failing EPs" ]
  in
  let row label (r : design_run) =
    Texttab.add_row tab
      [
        label;
        Texttab.fmt_float ~dec:2 (r.result.Flow.after.Metrics.tns /. 1000.0);
        Texttab.fmt_float ~dec:1 r.result.Flow.after.Metrics.wns;
        Texttab.fmt_int r.result.Flow.after.Metrics.failing;
      ]
  in
  row "after composition (Fig. 4)" on;
  row "disabled" off;
  Texttab.render tab
