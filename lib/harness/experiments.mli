(** The experiment harness behind `bench/main.exe` and `bin/mbrc`:
    regenerates every table and figure of the paper's evaluation (§5)
    on the synthetic D1–D5 designs. See DESIGN.md §4 for the experiment
    index and EXPERIMENTS.md for recorded paper-vs-measured results. *)

type design_run = {
  profile : Mbr_designgen.Profile.t;
  result : Mbr_core.Flow.result;
  hist_before : (int * int) list;  (** Fig. 5 "before" (bits, count) *)
  hist_after : (int * int) list;
  metrics : Mbr_obs.Metrics.snapshot;
      (** telemetry registry snapshot taken right after the flow ran —
          all zeros unless the caller enabled {!Mbr_obs.Metrics}
          (`bench/main` does, resetting per run) *)
}

val run_profile :
  ?options:Mbr_core.Flow.options ->
  ?jobs:int ->
  Mbr_designgen.Profile.t ->
  design_run
(** Generate the design and run the full Fig. 4 flow. [jobs] (worker
    domains for the allocate stage) overrides [options.jobs] when
    given; the selection is identical at any value (see
    {!Mbr_core.Allocate}). *)

val table1 : design_run list -> string
(** The paper's Table 1: Base / Ours / Save rows per design. *)

val table1_summary : design_run list -> string
(** The §5 headline averages (register count, clock cap, buffers, ...)
    next to the paper's reported numbers. *)

val fig5 : design_run list -> string
(** MBR bit-width breakdown before/after per design. *)

type fig6_row = {
  name : string;
  base_regs : int;
  ilp_regs : int;
  heuristic_regs : int;
}

val fig6 : ?jobs:int -> Mbr_designgen.Profile.t list -> fig6_row list * string
(** Runs each profile twice (ILP vs the greedy allocator on the same
    weighted candidates) and renders the normalized comparison. *)

val ablation_partition_bound :
  ?jobs:int -> Mbr_designgen.Profile.t -> int list -> string
(** §3's partition-bound discussion: QoR and runtime for each bound. *)

val ablation_weights : ?jobs:int -> Mbr_designgen.Profile.t -> string
(** §3.2's weighting: with the placement-aware weights vs without
    (every merge weighted 1/bits), reporting blocked-hull merges and
    congestion alongside register count. *)

val ablation_incomplete : ?jobs:int -> Mbr_designgen.Profile.t -> string
(** Incomplete MBRs off/on (§3, §5's 5 % rule). *)

val ablation_skew : ?jobs:int -> Mbr_designgen.Profile.t -> string
(** Useful skew off/on after composition (Fig. 4). *)

val ablation_global_entry : ?jobs:int -> Mbr_designgen.Profile.t -> string
(** The conclusion's claim that composition "can be applied
    incrementally both after global and detailed placement": the same
    design composed from a legalized snapshot and from a jittered
    global-placement snapshot. *)

val ablation_decompose : ?jobs:int -> Mbr_designgen.Profile.t -> string
(** The paper's §5 future work, implemented: decompose max-width MBRs
    before composition and recompose. Most interesting on the
    8-bit-rich D4, where the paper says plain composition helps
    least. *)
